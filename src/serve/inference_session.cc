#include "serve/inference_session.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "core/encoder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/inference.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace widen::serve {
namespace {

namespace T = widen::tensor;

// Serving metrics, resolved once. Histograms back the p50/p99 the serve CLI
// prints; the hit/miss counters mirror the session's internal atomics so the
// store's behaviour shows up in --metrics_out dumps.
struct ServeMetrics {
  obs::Histogram* embed_us;
  obs::Histogram* embed_batch_nodes;
  obs::Counter* base_hits;
  obs::Counter* store_hits;
  obs::Counter* store_misses;
  obs::Counter* ingests;
  obs::Counter* invalidations;
  obs::Histogram* invalidated_nodes;
  obs::Gauge* store_resident_bytes;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = {
        obs::MetricsRegistry::Get().GetHistogram(
            "widen_serve_embed_us",
            "Wall time per InferenceSession::Embed call (microseconds)"),
        obs::MetricsRegistry::Get().GetHistogram(
            "widen_serve_embed_batch_nodes",
            "Nodes requested per Embed call"),
        obs::MetricsRegistry::Get().GetCounter(
            "widen_serve_base_hits_total",
            "Embed rows served from the checkpoint's frozen base reps"),
        obs::MetricsRegistry::Get().GetCounter(
            "widen_serve_store_hits_total",
            "Embed rows served from the versioned embedding store"),
        obs::MetricsRegistry::Get().GetCounter(
            "widen_serve_store_misses_total",
            "Embed rows that required a cold encode"),
        obs::MetricsRegistry::Get().GetCounter(
            "widen_serve_ingests_total", "Graph deltas ingested"),
        obs::MetricsRegistry::Get().GetCounter(
            "widen_serve_store_invalidations_total",
            "Nodes invalidated in the embedding store across all ingests"),
        obs::MetricsRegistry::Get().GetHistogram(
            "widen_serve_invalidated_nodes",
            "Store rows invalidated per ingest (k-hop BFS size)"),
        obs::MetricsRegistry::Get().GetGauge(
            "widen_serve_store_resident_bytes",
            "Approximate heap bytes held by the versioned embedding store"),
    };
    return m;
  }
};

/// RepSource over the checkpoint's frozen embedding store: valid base rows
/// are served, everything else (invalid base rows, delta-added nodes) falls
/// back to the fresh projection — exactly the CacheRepSource the model uses
/// over a cache whose base rows are valid and whose new rows are not, which
/// is what makes session cold encodes bitwise-equal to EmbedNodes.
class BaseRepSource final : public core::RepSource {
 public:
  BaseRepSource(const T::Tensor* reps, const std::vector<bool>* valid,
                int64_t embedding_dim)
      : reps_(reps), valid_(valid), embedding_dim_(embedding_dim) {}

  const float* Lookup(graph::NodeId v) const override {
    if (v < 0 || v >= static_cast<graph::NodeId>(valid_->size()) ||
        !(*valid_)[static_cast<size_t>(v)]) {
      return nullptr;
    }
    return reps_->data() + static_cast<int64_t>(v) * embedding_dim_;
  }

 private:
  const T::Tensor* reps_;
  const std::vector<bool>* valid_;
  int64_t embedding_dim_;
};

}  // namespace

StatusOr<std::unique_ptr<InferenceSession>> InferenceSession::Load(
    const std::string& checkpoint_path, const graph::HeteroGraph* base_graph,
    const core::WidenConfig& config, const SessionOptions& options) {
  if (base_graph == nullptr) {
    return Status::InvalidArgument("base_graph must not be null");
  }
  if (!base_graph->features().defined()) {
    return Status::InvalidArgument("base graph has no node features");
  }
  WIDEN_RETURN_IF_ERROR(config.Validate());
  WIDEN_ASSIGN_OR_RETURN(core::ServingWeights weights,
                         core::LoadServingWeights(checkpoint_path));
  if (weights.params.feature_dim() != base_graph->feature_dim()) {
    return Status::InvalidArgument(
        StrCat("checkpoint expects ", weights.params.feature_dim(),
               "-dim features, graph has ", base_graph->feature_dim()));
  }
  if (weights.params.embedding_dim() != config.embedding_dim) {
    return Status::InvalidArgument(
        StrCat("checkpoint embedding_dim ", weights.params.embedding_dim(),
               " != config embedding_dim ", config.embedding_dim));
  }
  const graph::GraphSchema& schema = base_graph->schema();
  if (weights.params.edges->edge_table().rows() != schema.num_edge_types() ||
      weights.params.edges->self_loop_table().rows() !=
          schema.num_node_types()) {
    return Status::InvalidArgument(
        StrCat("checkpoint was trained on a schema with ",
               weights.params.edges->edge_table().rows(), " edge types / ",
               weights.params.edges->self_loop_table().rows(),
               " node types; graph schema has ", schema.num_edge_types(),
               " / ", schema.num_node_types()));
  }
  if (weights.cache_reps.defined() &&
      weights.cache_reps.rows() != base_graph->num_nodes()) {
    return Status::InvalidArgument(
        StrCat("checkpoint embedding store covers ", weights.cache_reps.rows(),
               " nodes, base graph has ", base_graph->num_nodes()));
  }
  if (options.store_capacity < 0) {
    return Status::InvalidArgument("store_capacity must be >= 0");
  }
  if (options.weight_quant != T::QuantFormat::kNone) {
    // Quantize once at load. Weights that already carry a sidecar of the
    // requested format (quantized checkpoint files) are kept as stored.
    core::ServingWeights* w = &weights;
    bool all_attached = true;
    for (const T::Tensor& t : w->params.MatMulWeights()) {
      const T::QuantMatrix* qm = T::GetQuant(t);
      all_attached &= qm != nullptr && qm->format == options.weight_quant;
    }
    if (!all_attached) {
      core::QuantizeServingWeights(w, options.weight_quant);
    }
  } else {
    core::QuantizeServingWeights(&weights, T::QuantFormat::kNone);
  }
  obs::SetProfileAnnotation("weight_quant",
                            T::QuantFormatName(options.weight_quant));
  WIDEN_METRIC_GAUGE(quant_gauge, "widen_serve_weight_quant",
                     "Serving weight storage format "
                     "(0 = fp32, 1 = int8 block-32, 2 = fp16)");
  quant_gauge->Set(static_cast<double>(options.weight_quant));
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(weights), base_graph, config, options));
}

InferenceSession::InferenceSession(core::ServingWeights weights,
                                   const graph::HeteroGraph* base_graph,
                                   const core::WidenConfig& config,
                                   const SessionOptions& options)
    : weights_(std::move(weights)),
      config_(config),
      options_(options),
      view_(base_graph),
      store_(options.store_capacity, weights_.params.embedding_dim()),
      pool_(options.num_threads > 1
                ? std::make_unique<ThreadPool>(
                      static_cast<size_t>(options.num_threads))
                : nullptr) {
  if (weights_.cache_valid.defined()) {
    const int64_t n = weights_.cache_valid.rows();
    base_valid_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      base_valid_[static_cast<size_t>(i)] =
          weights_.cache_valid.data()[i] != 0.0f;
    }
  }
}

int64_t InferenceSession::num_nodes() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return view_.num_nodes();
}

int64_t InferenceSession::InvalidationHops() const {
  if (options_.invalidation_hops >= 0) return options_.invalidation_hops;
  return std::max<int64_t>(1, config_.num_deep_neighbors);
}

GraphDelta InferenceSession::NewDelta() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return GraphDelta(view_.num_nodes());
}

StatusOr<tensor::Tensor> InferenceSession::Embed(
    const std::vector<graph::NodeId>& nodes) {
  return Embed(nodes, nullptr);
}

StatusOr<tensor::Tensor> InferenceSession::Embed(
    const std::vector<graph::NodeId>& nodes, EmbedReport* report) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  WIDEN_TRACE_SPAN("embed", "serve");
  // Warm phase covers the whole call; cold encodes re-scope themselves below
  // (including on pool threads, which carry no inherited phase).
  obs::ScopedProfPhase phase_scope(obs::ProfPhase::kServeWarm);
  obs::ScopedLatencyTimer embed_timer(metrics.embed_us);
  metrics.embed_batch_nodes->Record(static_cast<double>(nodes.size()));
  std::shared_lock<std::shared_mutex> graph_lock(graph_mu_);
  const int64_t n = view_.num_nodes();
  for (graph::NodeId v : nodes) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument(
          StrCat("node ", v, " out of range [0, ", n, ")"));
    }
  }
  const uint64_t version = version_.load();
  const int64_t d = weights_.params.embedding_dim();
  T::Tensor out(T::Shape::Matrix(static_cast<int64_t>(nodes.size()), d));

  std::vector<size_t> cold;  // request positions needing a fresh encode
  {
    std::vector<float> row;
    int64_t base_hits = 0;
    int64_t store_hits = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      const graph::NodeId v = nodes[i];
      if (HasBaseRep(v)) {
        std::memcpy(out.mutable_data() + static_cast<int64_t>(i) * d,
                    BaseRepRow(v), static_cast<size_t>(d) * sizeof(float));
        ++base_hits;
        continue;
      }
      bool hit;
      {
        std::lock_guard<std::mutex> store_lock(store_mu_);
        hit = store_.Lookup(version, v, &row);
      }
      if (hit) {
        std::memcpy(out.mutable_data() + static_cast<int64_t>(i) * d,
                    row.data(), static_cast<size_t>(d) * sizeof(float));
        ++store_hits;
      } else {
        cold.push_back(i);
      }
    }
    base_hits_ += base_hits;
    store_hits_ += store_hits;
    metrics.base_hits->Add(base_hits);
    metrics.store_hits->Add(store_hits);
    if (report != nullptr) {
      report->base_hits = base_hits;
      report->store_hits = store_hits;
    }
  }

  if (!cold.empty()) {
    WIDEN_TRACE_SPAN("cold_encode", "serve");
    metrics.store_misses->Add(static_cast<int64_t>(cold.size()));
    const BaseRepSource reps(&weights_.cache_reps, &base_valid_, d);
    // Rows are disjoint and every cold node draws from its own RNG stream
    // (EvalSeedForNode), so fan-out order cannot change any bit.
    auto encode_one = [&](size_t k) {
      obs::ScopedProfPhase cold_scope(obs::ProfPhase::kServeCold);
      T::InferenceScope inference;
      const graph::NodeId v = nodes[cold[k]];
      T::Tensor mean =
          core::EncodeColdMean(view_, weights_.params, config_, v, &reps);
      std::memcpy(out.mutable_data() + static_cast<int64_t>(cold[k]) * d,
                  mean.data(), static_cast<size_t>(d) * sizeof(float));
    };
    if (pool_ != nullptr && cold.size() > 1) {
      ParallelFor(*pool_, 0, cold.size(), encode_one);
    } else {
      for (size_t k = 0; k < cold.size(); ++k) encode_one(k);
    }
    cold_encodes_ += static_cast<int64_t>(cold.size());
    if (report != nullptr) {
      report->cold_encodes = static_cast<int64_t>(cold.size());
    }
    std::lock_guard<std::mutex> store_lock(store_mu_);
    for (size_t k : cold) {
      store_.Insert(version, nodes[k],
                    out.data() + static_cast<int64_t>(k) * d);
    }
    metrics.store_resident_bytes->Set(
        static_cast<double>(store_.ResidentBytes()));
  }
  return out;
}

tensor::Tensor InferenceSession::ClassifyRows(
    const tensor::Tensor& embeddings) const {
  T::InferenceScope inference;
  return T::MatMul(embeddings, weights_.params.classifier);
}

StatusOr<std::vector<int32_t>> InferenceSession::Predict(
    const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(nodes));
  return T::ArgMaxRows(ClassifyRows(embeddings));
}

StatusOr<uint64_t> InferenceSession::Ingest(const GraphDelta& delta) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  WIDEN_TRACE_SPAN("ingest", "serve");
  std::unique_lock<std::shared_mutex> graph_lock(graph_mu_);
  WIDEN_ASSIGN_OR_RETURN(std::vector<graph::NodeId> touched,
                         view_.Apply(delta));
  const uint64_t new_version = version_.load() + 1;

  // Everything within k hops of a changed node may sample through the new
  // structure; everything farther provably cannot (walks are length-bounded),
  // so its cached row survives the version bump.
  std::unordered_set<graph::NodeId> affected(touched.begin(), touched.end());
  std::vector<graph::NodeId> frontier = touched;
  const int64_t hops = InvalidationHops();
  for (int64_t hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<graph::NodeId> next;
    for (graph::NodeId v : frontier) {
      const graph::Csr::NeighborSpan span = view_.neighbors(v);
      for (int64_t i = 0; i < span.size; ++i) {
        if (affected.insert(span.neighbors[i]).second) {
          next.push_back(span.neighbors[i]);
        }
      }
    }
    frontier = std::move(next);
  }
  std::vector<graph::NodeId> invalidated(affected.begin(), affected.end());
  std::sort(invalidated.begin(), invalidated.end());
  {
    std::lock_guard<std::mutex> store_lock(store_mu_);
    store_.BeginVersion(new_version, invalidated);
    metrics.store_resident_bytes->Set(
        static_cast<double>(store_.ResidentBytes()));
  }
  version_.store(new_version);
  ++ingests_;
  metrics.ingests->Increment();
  metrics.invalidations->Add(static_cast<int64_t>(invalidated.size()));
  metrics.invalidated_nodes->Record(static_cast<double>(invalidated.size()));
  return new_version;
}

InferenceSession::Stats InferenceSession::stats() const {
  Stats s;
  s.base_hits = base_hits_.load();
  s.store_hits = store_hits_.load();
  s.cold_encodes = cold_encodes_.load();
  s.ingests = ingests_.load();
  {
    std::lock_guard<std::mutex> store_lock(store_mu_);
    s.store = store_.stats();
  }
  return s;
}

}  // namespace widen::serve
