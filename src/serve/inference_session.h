// Query-able embedding service over a trained WIDEN checkpoint.
//
// An InferenceSession turns a .wdnt file (core/checkpoint.h) into a frozen,
// thread-safe embedding/prediction server:
//
//   * Base nodes keep the representations Algorithm 3 trained for them —
//     the checkpoint's embedding store is served verbatim, bitwise equal to
//     WidenModel::EmbedNodes on the training graph.
//   * The graph can keep growing after training: Ingest() applies GraphDelta
//     batches onto a DeltaGraphView overlay (no CSR rebuild), and new nodes
//     are embedded on demand through the shared encode path
//     (core/encoder.h) with tape-free, allocation-reusing forwards
//     (tensor/inference.h).
//   * Computed rows are cached in a bounded LRU keyed by
//     (graph_version, node); each ingest bumps the version and invalidates
//     exactly the k-hop neighborhood whose inputs changed.
//
// Concurrency: Embed/Predict take a shared lock, Ingest an exclusive one,
// and the LRU store has its own mutex — many readers proceed in parallel
// and are serialized only against ingests.

#ifndef WIDEN_SERVE_INFERENCE_SESSION_H_
#define WIDEN_SERVE_INFERENCE_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/widen_config.h"
#include "serve/embedding_store.h"
#include "serve/graph_delta.h"
#include "tensor/quant.h"
#include "util/threadpool.h"

namespace widen::serve {

struct SessionOptions {
  /// Maximum number of rows in the computed-embedding LRU store (0 disables
  /// caching; every non-base query recomputes).
  int64_t store_capacity = 4096;
  /// How many hops around a delta's touched nodes to invalidate. -1 derives
  /// the exact bound from the config: max(1, num_deep_neighbors), the
  /// farthest any sampled input reaches.
  int64_t invalidation_hops = -1;
  /// Worker threads for fanning cold-node encodes of one Embed call out in
  /// parallel (1 = serial). Results are bitwise independent of this value —
  /// every cold node draws from its own RNG stream.
  int64_t num_threads = 1;
  /// Storage format for the MatMul-consumed weights (tensor/quant.h).
  /// kNone serves the exact fp32 checkpoint values (bitwise-equal to
  /// training-side EmbedNodes); kInt8Block32 / kFp16 quantize once at load
  /// and stream the compressed weights through the fused dequant-dot
  /// kernels — faster cold encodes, bounded approximation (measured in
  /// BENCH_serving.json). Files saved with sidecars already attached skip
  /// the re-quantization.
  tensor::QuantFormat weight_quant = tensor::QuantFormat::kNone;
};

class InferenceSession {
 public:
  /// Loads serving weights from `checkpoint_path` (written by SaveWidenModel
  /// or SaveTrainingState). `base_graph` must be the training graph (or any
  /// graph matching the checkpoint's embedding store, if present) and must
  /// outlive the session; `config` must carry the sampling hyperparameters
  /// training used — seed included — for bit-identical cold encodes.
  static StatusOr<std::unique_ptr<InferenceSession>> Load(
      const std::string& checkpoint_path, const graph::HeteroGraph* base_graph,
      const core::WidenConfig& config, const SessionOptions& options = {});

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Per-call composition of one Embed: how many rows came from the frozen
  /// rep table, the warm LRU store, and fresh encodes. The deltas behind the
  /// cumulative Stats counters, exposed so request tracing can attribute a
  /// batch's store behavior to the requests it served.
  struct EmbedReport {
    int64_t base_hits = 0;
    int64_t store_hits = 0;
    int64_t cold_encodes = 0;
  };

  /// Embeds `nodes` (base or delta-added): [nodes.size(), d]. Safe to call
  /// from many threads concurrently. `report`, when non-null, receives this
  /// call's row composition.
  StatusOr<tensor::Tensor> Embed(const std::vector<graph::NodeId>& nodes);
  StatusOr<tensor::Tensor> Embed(const std::vector<graph::NodeId>& nodes,
                                 EmbedReport* report);

  /// Class predictions through the trained classifier head.
  StatusOr<std::vector<int32_t>> Predict(
      const std::vector<graph::NodeId>& nodes);

  /// Logits = embeddings x C. Row-independent, so batching requests together
  /// cannot change any row's bits (serve/request_batcher.cc relies on this).
  tensor::Tensor ClassifyRows(const tensor::Tensor& embeddings) const;

  /// A delta builder positioned at the current node count.
  GraphDelta NewDelta() const;

  /// Applies `delta`, bumps the graph version, and invalidates the cached
  /// rows whose k-hop inputs changed. Returns the new version.
  StatusOr<uint64_t> Ingest(const GraphDelta& delta);

  uint64_t graph_version() const { return version_.load(); }
  int64_t num_nodes() const;
  int64_t embedding_dim() const { return weights_.params.embedding_dim(); }
  int32_t num_classes() const { return weights_.params.num_classes(); }
  const core::WidenConfig& config() const { return config_; }

  struct Stats {
    int64_t base_hits = 0;      // rows served from the trained rep table
    int64_t store_hits = 0;     // rows served warm from the LRU store
    int64_t cold_encodes = 0;   // rows computed by EncodeColdMean
    int64_t ingests = 0;
    EmbeddingStore::Stats store;
  };
  Stats stats() const;

 private:
  InferenceSession(core::ServingWeights weights,
                   const graph::HeteroGraph* base_graph,
                   const core::WidenConfig& config,
                   const SessionOptions& options);

  /// True when `v` has a frozen training-time representation.
  bool HasBaseRep(graph::NodeId v) const {
    return v < static_cast<graph::NodeId>(base_valid_.size()) &&
           base_valid_[static_cast<size_t>(v)];
  }
  const float* BaseRepRow(graph::NodeId v) const {
    return weights_.cache_reps.data() + static_cast<int64_t>(v) *
                                            weights_.params.embedding_dim();
  }
  int64_t InvalidationHops() const;

  core::ServingWeights weights_;
  std::vector<bool> base_valid_;  // cache_valid unpacked; empty if no store
  core::WidenConfig config_;
  SessionOptions options_;

  mutable std::shared_mutex graph_mu_;  // guards view_ (Ingest is writer)
  DeltaGraphView view_;
  std::atomic<uint64_t> version_{0};

  mutable std::mutex store_mu_;  // guards store_
  EmbeddingStore store_;

  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1

  std::atomic<int64_t> base_hits_{0};
  std::atomic<int64_t> store_hits_{0};
  std::atomic<int64_t> cold_encodes_{0};
  std::atomic<int64_t> ingests_{0};
};

}  // namespace widen::serve

#endif  // WIDEN_SERVE_INFERENCE_SESSION_H_
