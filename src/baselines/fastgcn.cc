#include "baselines/fastgcn.h"

#include <algorithm>
#include <unordered_map>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

FastGcnModel::FastGcnModel(train::ModelHyperparams hyperparams,
                           int64_t layer_sample_size)
    : hp_(std::move(hyperparams)),
      layer_sample_size_(layer_sample_size),
      rng_(hp_.seed) {}

Status FastGcnModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  w1_ = T::XavierUniform(
      T::Shape::Matrix(graph.feature_dim(), hp_.hidden_dim), rng_, "fgcn_w1");
  w2_ = T::XavierUniform(T::Shape::Matrix(hp_.hidden_dim, graph.num_classes()),
                         rng_, "fgcn_w2");
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters({w1_, w2_});
  initialized_ = true;
  return Status::OK();
}

T::Tensor FastGcnModel::DenseAdjacencySlice(
    const T::SparseCsr& adjacency, const std::vector<graph::NodeId>& rows,
    const sampling::LayerSample& cols) const {
  std::unordered_map<graph::NodeId, std::pair<int64_t, float>> col_pos;
  col_pos.reserve(cols.nodes.size());
  for (size_t j = 0; j < cols.nodes.size(); ++j) {
    col_pos[cols.nodes[j]] = {static_cast<int64_t>(j), cols.weights[j]};
  }
  T::Tensor dense(T::Shape::Matrix(static_cast<int64_t>(rows.size()),
                                   static_cast<int64_t>(cols.nodes.size())));
  float* out = dense.mutable_data();
  const int64_t width = static_cast<int64_t>(cols.nodes.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const graph::NodeId r = rows[i];
    for (int64_t k = adjacency.offsets()[static_cast<size_t>(r)];
         k < adjacency.offsets()[static_cast<size_t>(r) + 1]; ++k) {
      const auto it =
          col_pos.find(adjacency.col_indices()[static_cast<size_t>(k)]);
      if (it == col_pos.end()) continue;
      out[static_cast<int64_t>(i) * width + it->second.first] +=
          adjacency.values()[static_cast<size_t>(k)] * it->second.second;
    }
  }
  return dense;
}

Status FastGcnModel::Fit(const graph::HeteroGraph& graph,
                         const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  const T::SparseCsr& adjacency = adjacency_cache_.GetOrCreate(
      graph, [&] { return NormalizedAdjacency(graph); });
  sampling::LayerSampler sampler(graph);
  std::vector<graph::NodeId> order = train_nodes;

  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(hp_.batch_size)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(hp_.batch_size));
      std::vector<graph::NodeId> batch(order.begin() + begin,
                                       order.begin() + end);
      // Two independently sampled layers (t nodes each).
      sampling::LayerSample layer1 = sampler.Sample(layer_sample_size_, rng_);
      sampling::LayerSample layer2 = sampler.Sample(layer_sample_size_, rng_);
      // H1(S1) = ReLU( Â[S1, S2]·diag(w2) X(S2) W1 )
      std::vector<int32_t> layer2_idx(layer2.nodes.begin(),
                                      layer2.nodes.end());
      T::Tensor x2 = T::GatherRows(graph.features(), layer2_idx);
      T::Tensor a12 = DenseAdjacencySlice(adjacency, layer1.nodes, layer2);
      T::Tensor h1 = T::Relu(T::MatMul(a12, T::MatMul(x2, w1_)));
      // logits(B) = Â[B, S1]·diag(w1) H1 W2
      T::Tensor a01 = DenseAdjacencySlice(adjacency, batch, layer1);
      T::Tensor logits = T::MatMul(T::MatMul(a01, h1), w2_);
      std::vector<int32_t> labels;
      labels.reserve(batch.size());
      for (graph::NodeId v : batch) labels.push_back(graph.label(v));
      T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels);
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.item();
      ++batches;
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch,
                         batches > 0 ? loss_sum / static_cast<double>(batches)
                                     : 0.0,
                         watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

T::Tensor FastGcnModel::FullForward(const graph::HeteroGraph& graph,
                                    T::Tensor* hidden) {
  const T::SparseCsr& adjacency = adjacency_cache_.GetOrCreate(
      graph, [&] { return NormalizedAdjacency(graph); });
  T::Tensor h =
      T::Relu(T::MatMul(T::SparseMatMul(adjacency, graph.features()), w1_));
  if (hidden != nullptr) *hidden = h;
  return T::MatMul(T::SparseMatMul(adjacency, h), w2_);
}

StatusOr<std::vector<int32_t>> FastGcnModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Predict before Fit");
  T::Tensor logits = FullForward(graph, nullptr);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  return T::ArgMaxRows(T::GatherRows(logits, indices));
}

StatusOr<T::Tensor> FastGcnModel::Embed(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  T::Tensor hidden;
  FullForward(graph, &hidden);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  T::Tensor out = T::GatherRows(hidden, indices);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
