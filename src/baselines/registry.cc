#include "baselines/registry.h"

#include "baselines/fastgcn.h"
#include "baselines/gat.h"
#include "baselines/gcn.h"
#include "baselines/graphsage.h"
#include "baselines/gtn.h"
#include "baselines/han.h"
#include "baselines/hgt.h"
#include "baselines/node2vec.h"
#include "baselines/rgcn.h"
#include "baselines/widen_adapter.h"
#include "util/string_util.h"

namespace widen::baselines {

std::vector<std::string> AvailableModels() {
  return {"Node2Vec", "GCN",  "FastGCN", "GraphSAGE", "GAT",
          "GTN",      "HAN",  "HGT",     "WIDEN"};
}

core::WidenConfig WidenConfigFromHyperparams(
    const train::ModelHyperparams& hyperparams) {
  core::WidenConfig config;
  config.embedding_dim = hyperparams.embedding_dim;
  config.learning_rate = hyperparams.learning_rate;
  config.batch_size = hyperparams.batch_size;
  config.max_epochs = hyperparams.epochs;
  config.seed = hyperparams.seed;
  config.l2_regularization = hyperparams.weight_decay;
  return config;
}

StatusOr<std::unique_ptr<train::Model>> CreateModel(
    const std::string& name, const train::ModelHyperparams& hyperparams) {
  if (name == "Node2Vec") {
    return std::unique_ptr<train::Model>(new Node2VecModel(hyperparams));
  }
  if (name == "GCN") {
    return std::unique_ptr<train::Model>(new GcnModel(hyperparams));
  }
  if (name == "FastGCN") {
    return std::unique_ptr<train::Model>(new FastGcnModel(hyperparams));
  }
  if (name == "GraphSAGE") {
    return std::unique_ptr<train::Model>(new GraphSageModel(hyperparams));
  }
  if (name == "GAT") {
    return std::unique_ptr<train::Model>(new GatModel(hyperparams));
  }
  if (name == "GTN") {
    return std::unique_ptr<train::Model>(new GtnModel(hyperparams));
  }
  if (name == "HAN") {
    return std::unique_ptr<train::Model>(new HanModel(hyperparams));
  }
  if (name == "HGT") {
    return std::unique_ptr<train::Model>(new HgtModel(hyperparams));
  }
  if (name == "RGCN") {
    // Bonus model beyond the paper's Table 2 (discussed in its §5.2); not
    // listed by AvailableModels() so the table harnesses match the paper.
    return std::unique_ptr<train::Model>(new RgcnModel(hyperparams));
  }
  if (name == "WIDEN") {
    auto adapter = std::make_unique<WidenAdapter>(
        WidenConfigFromHyperparams(hyperparams));
    adapter->set_epoch_observer(hyperparams.epoch_observer);
    return std::unique_ptr<train::Model>(std::move(adapter));
  }
  return Status::NotFound(StrCat("unknown model '", name, "'"));
}

}  // namespace widen::baselines
