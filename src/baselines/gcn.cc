#include "baselines/gcn.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

GcnModel::GcnModel(train::ModelHyperparams hyperparams)
    : hp_(std::move(hyperparams)), rng_(hp_.seed) {}

Status GcnModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) {
    if (graph.feature_dim() != w1_.rows()) {
      return Status::FailedPrecondition("feature dimension changed after Fit");
    }
    return Status::OK();
  }
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  w1_ = T::XavierUniform(
      T::Shape::Matrix(graph.feature_dim(), hp_.hidden_dim), rng_, "gcn_w1");
  w2_ = T::XavierUniform(T::Shape::Matrix(hp_.hidden_dim, graph.num_classes()),
                         rng_, "gcn_w2");
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters({w1_, w2_});
  initialized_ = true;
  return Status::OK();
}

T::Tensor GcnModel::ForwardLogits(const graph::HeteroGraph& graph,
                                  T::Tensor* hidden, bool training) {
  const T::SparseCsr& adjacency = adjacency_cache_.GetOrCreate(
      graph, [&] { return NormalizedAdjacency(graph); });
  T::Tensor x = graph.features();
  T::Tensor h = T::Relu(T::MatMul(T::SparseMatMul(adjacency, x), w1_));
  if (training) h = T::Dropout(h, hp_.dropout, rng_, /*training=*/true);
  if (hidden != nullptr) *hidden = h;
  return T::MatMul(T::SparseMatMul(adjacency, h), w2_);
}

Status GcnModel::Fit(const graph::HeteroGraph& graph,
                     const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  const std::vector<float> mask = TrainMask(graph.num_nodes(), train_nodes);
  const std::vector<int32_t> labels = MaskedLabels(graph);
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    T::Tensor logits = ForwardLogits(graph, nullptr, /*training=*/true);
    T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels, &mask);
    optimizer_->ZeroGrad();
    loss.Backward();
    optimizer_->Step();
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch, loss.item(), watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> GcnModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Predict before Fit");
  T::Tensor logits = ForwardLogits(graph, nullptr, /*training=*/false);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  return T::ArgMaxRows(T::GatherRows(logits, indices));
}

StatusOr<T::Tensor> GcnModel::Embed(const graph::HeteroGraph& graph,
                                    const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  T::Tensor hidden;
  ForwardLogits(graph, &hidden, /*training=*/false);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  T::Tensor out = T::GatherRows(hidden, indices);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
