#include "baselines/widen_adapter.h"

namespace widen::baselines {

Status WidenAdapter::Fit(const graph::HeteroGraph& graph,
                         const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_ASSIGN_OR_RETURN(model_, core::WidenModel::Create(&graph, config_));
  auto observer = [this](const core::WidenEpochLog& log) {
    if (observer_) observer_(log.epoch, log.mean_loss, log.seconds);
  };
  WIDEN_ASSIGN_OR_RETURN(report_, model_->Train(train_nodes, observer));
  return Status::OK();
}

StatusOr<std::vector<int32_t>> WidenAdapter::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  return model_->Predict(graph, nodes);
}

StatusOr<tensor::Tensor> WidenAdapter::Embed(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("Embed before Fit");
  }
  return model_->EmbedNodes(graph, nodes);
}

}  // namespace widen::baselines
