#include "baselines/common.h"

#include <cmath>

#include "util/logging.h"

namespace widen::baselines {

tensor::SparseCsr NormalizedAdjacency(const graph::HeteroGraph& graph) {
  const int64_t n = graph.num_nodes();
  std::vector<double> degree(static_cast<size_t>(n), 1.0);  // + self loop
  for (graph::NodeId v = 0; v < n; ++v) {
    degree[static_cast<size_t>(v)] += static_cast<double>(graph.degree(v));
  }
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  triplets.reserve(static_cast<size_t>(graph.num_edges()) * 2 +
                   static_cast<size_t>(n));
  auto norm = [&](graph::NodeId u, graph::NodeId v) {
    return static_cast<float>(1.0 / std::sqrt(degree[static_cast<size_t>(u)] *
                                              degree[static_cast<size_t>(v)]));
  };
  for (graph::NodeId v = 0; v < n; ++v) {
    triplets.emplace_back(v, v, norm(v, v));
    graph::Csr::NeighborSpan span = graph.neighbors(v);
    for (int64_t i = 0; i < span.size; ++i) {
      triplets.emplace_back(v, span.neighbors[i], norm(v, span.neighbors[i]));
    }
  }
  return tensor::SparseCsr::FromTriplets(n, n, triplets);
}

tensor::SparseCsr TypedRowNormalizedAdjacency(const graph::HeteroGraph& graph,
                                              graph::EdgeTypeId edge_type) {
  const int64_t n = graph.num_nodes();
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  for (graph::NodeId v = 0; v < n; ++v) {
    graph::Csr::NeighborSpan span = graph.neighbors(v);
    int64_t typed_degree = 0;
    for (int64_t i = 0; i < span.size; ++i) {
      if (span.edge_types[i] == edge_type) ++typed_degree;
    }
    if (typed_degree == 0) continue;
    const float w = 1.0f / static_cast<float>(typed_degree);
    for (int64_t i = 0; i < span.size; ++i) {
      if (span.edge_types[i] == edge_type) {
        triplets.emplace_back(v, span.neighbors[i], w);
      }
    }
  }
  return tensor::SparseCsr::FromTriplets(n, n, triplets);
}

tensor::SparseCsr IdentityCsr(int64_t n) {
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  triplets.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) triplets.emplace_back(i, i, 1.0f);
  return tensor::SparseCsr::FromTriplets(n, n, triplets);
}

std::vector<float> TrainMask(int64_t num_nodes,
                             const std::vector<graph::NodeId>& train_nodes) {
  std::vector<float> mask(static_cast<size_t>(num_nodes), 0.0f);
  for (graph::NodeId v : train_nodes) {
    WIDEN_CHECK(v >= 0 && v < num_nodes);
    mask[static_cast<size_t>(v)] = 1.0f;
  }
  return mask;
}

std::vector<int32_t> MaskedLabels(const graph::HeteroGraph& graph) {
  std::vector<int32_t> labels(static_cast<size_t>(graph.num_nodes()), 0);
  for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const int32_t y = graph.label(v);
    labels[static_cast<size_t>(v)] = y >= 0 ? y : 0;
  }
  return labels;
}

}  // namespace widen::baselines
