// Adapter exposing core::WidenModel through the common train::Model
// interface so harnesses can sweep WIDEN alongside the baselines.

#ifndef WIDEN_BASELINES_WIDEN_ADAPTER_H_
#define WIDEN_BASELINES_WIDEN_ADAPTER_H_

#include <memory>

#include "core/widen_config.h"
#include "core/widen_model.h"
#include "train/model.h"

namespace widen::baselines {

class WidenAdapter : public train::Model {
 public:
  explicit WidenAdapter(core::WidenConfig config, std::string display_name = "WIDEN")
      : config_(std::move(config)), display_name_(std::move(display_name)) {}

  std::string name() const override { return display_name_; }
  bool supports_inductive() const override { return true; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

  /// Per-epoch telemetry of the last Fit (Fig. 4/5 harnesses).
  const core::WidenTrainReport& last_report() const { return report_; }
  /// Non-null after Fit.
  core::WidenModel* model() { return model_.get(); }

  /// Hook for the common epoch observer.
  void set_epoch_observer(train::EpochObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  core::WidenConfig config_;
  std::string display_name_;
  std::unique_ptr<core::WidenModel> model_;
  core::WidenTrainReport report_;
  train::EpochObserver observer_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_WIDEN_ADAPTER_H_
