#include "baselines/gtn.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

GtnModel::GtnModel(train::ModelHyperparams hyperparams)
    : hp_(std::move(hyperparams)), rng_(hp_.seed) {}

Status GtnModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  const int64_t num_relations = graph.schema().num_edge_types() + 1;  // + I
  w1_ = T::XavierUniform(
      T::Shape::Matrix(graph.feature_dim(), hp_.hidden_dim), rng_, "gtn_w1");
  w2_ = T::XavierUniform(T::Shape::Matrix(hp_.hidden_dim, graph.num_classes()),
                         rng_, "gtn_w2");
  select1_ = T::ZeroParam(T::Shape::Matrix(1, num_relations), "gtn_sel1");
  select2_ = T::ZeroParam(T::Shape::Matrix(1, num_relations), "gtn_sel2");
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters({w1_, w2_, select1_, select2_});
  initialized_ = true;
  return Status::OK();
}

T::Tensor GtnModel::ForwardLogits(const graph::HeteroGraph& graph,
                                  T::Tensor* hidden) {
  const std::vector<T::SparseCsr>& relations = relations_cache_.GetOrCreate(
      graph, [&] {
        std::vector<T::SparseCsr> rel;
        for (graph::EdgeTypeId t = 0; t < graph.schema().num_edge_types();
             ++t) {
          rel.push_back(TypedRowNormalizedAdjacency(graph, t));
        }
        rel.push_back(IdentityCsr(graph.num_nodes()));
        return rel;
      });
  const int64_t num_relations = static_cast<int64_t>(relations.size());

  T::Tensor alpha1 = T::SoftmaxRows(select1_);
  T::Tensor alpha2 = T::SoftmaxRows(select2_);
  T::Tensor xw = T::MatMul(graph.features(), w1_);

  // First selection layer: P = Σ_t α¹_t A_t (XW).
  T::Tensor first_hop;
  for (int64_t t = 0; t < num_relations; ++t) {
    T::Tensor term = T::ScaleBy(
        T::SparseMatMul(relations[static_cast<size_t>(t)], xw),
        T::SliceCols(alpha1, t, 1));
    first_hop = first_hop.defined() ? T::Add(first_hop, term) : term;
  }
  // Second selection layer: H = Σ_t α²_t A_t P.
  T::Tensor second_hop;
  for (int64_t t = 0; t < num_relations; ++t) {
    T::Tensor term = T::ScaleBy(
        T::SparseMatMul(relations[static_cast<size_t>(t)], first_hop),
        T::SliceCols(alpha2, t, 1));
    second_hop = second_hop.defined() ? T::Add(second_hop, term) : term;
  }
  T::Tensor h = T::Relu(second_hop);
  if (hidden != nullptr) *hidden = h;
  return T::MatMul(h, w2_);
}

Status GtnModel::Fit(const graph::HeteroGraph& graph,
                     const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  const std::vector<float> mask = TrainMask(graph.num_nodes(), train_nodes);
  const std::vector<int32_t> labels = MaskedLabels(graph);
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    T::Tensor logits = ForwardLogits(graph, nullptr);
    T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels, &mask);
    optimizer_->ZeroGrad();
    loss.Backward();
    optimizer_->Step();
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch, loss.item(), watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> GtnModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Predict before Fit");
  T::Tensor logits = ForwardLogits(graph, nullptr);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  return T::ArgMaxRows(T::GatherRows(logits, indices));
}

StatusOr<T::Tensor> GtnModel::Embed(const graph::HeteroGraph& graph,
                                    const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  T::Tensor hidden;
  ForwardLogits(graph, &hidden);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  T::Tensor out = T::GatherRows(hidden, indices);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
