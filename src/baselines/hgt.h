// HGT baseline (Hu et al., 2020): relation-parameterized transformer
// attention over sampled neighborhoods. Keys and values are projected by
// per-edge-type matrices and queries by per-node-type matrices, so common and
// relation-specific patterns are both captured; a residual connection and an
// output projection follow, as in the original (depth reduced to one layer).

#ifndef WIDEN_BASELINES_HGT_H_
#define WIDEN_BASELINES_HGT_H_

#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class HgtModel : public train::Model {
 public:
  explicit HgtModel(train::ModelHyperparams hyperparams, int64_t fanout = 12);

  std::string name() const override { return "HGT"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  tensor::Tensor EmbedOne(const graph::HeteroGraph& graph, graph::NodeId node,
                          Rng& rng);

  train::ModelHyperparams hp_;
  int64_t fanout_;
  Rng rng_;
  bool initialized_ = false;
  tensor::Tensor w_in_;                    // [d0, d] shared input projection
  std::vector<tensor::Tensor> w_query_;    // per node type, [d, d]
  std::vector<tensor::Tensor> w_key_;      // per edge type, [d, d]
  std::vector<tensor::Tensor> w_value_;    // per edge type, [d, d]
  std::vector<tensor::Tensor> relation_prior_;  // per edge type, [1, 1] μ
  tensor::Tensor w_out_;                   // [d, d]
  tensor::Tensor classifier_;
  std::unique_ptr<tensor::Adam> optimizer_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_HGT_H_
