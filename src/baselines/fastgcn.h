// FastGCN baseline (Chen, Ma & Xiao, 2018): the GCN architecture trained
// with layer-wise importance sampling — each batch touches only two sampled
// node sets instead of recursive neighborhoods. Inference runs the full
// (deterministic) GCN propagation, as in the original.

#ifndef WIDEN_BASELINES_FASTGCN_H_
#define WIDEN_BASELINES_FASTGCN_H_

#include "baselines/common.h"
#include "sampling/layer_sampler.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class FastGcnModel : public train::Model {
 public:
  /// `layer_sample_size` is the per-layer sample budget t.
  explicit FastGcnModel(train::ModelHyperparams hyperparams,
                        int64_t layer_sample_size = 128);

  std::string name() const override { return "FastGCN"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  tensor::Tensor FullForward(const graph::HeteroGraph& graph,
                             tensor::Tensor* hidden);
  /// Dense [rows.size(), cols.size()] slice of Â scaled by the importance
  /// weights of `cols`.
  tensor::Tensor DenseAdjacencySlice(const tensor::SparseCsr& adjacency,
                                     const std::vector<graph::NodeId>& rows,
                                     const sampling::LayerSample& cols) const;

  train::ModelHyperparams hp_;
  int64_t layer_sample_size_;
  Rng rng_;
  bool initialized_ = false;
  tensor::Tensor w1_, w2_;
  std::unique_ptr<tensor::Adam> optimizer_;
  PerGraphCache<tensor::SparseCsr> adjacency_cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_FASTGCN_H_
