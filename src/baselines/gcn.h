// GCN baseline (Kipf & Welling, 2017): two spectral convolution layers over
// the symmetric-normalized full adjacency, trained full-batch with a masked
// cross-entropy. Heterogeneity is ignored by design.

#ifndef WIDEN_BASELINES_GCN_H_
#define WIDEN_BASELINES_GCN_H_

#include "baselines/common.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class GcnModel : public train::Model {
 public:
  explicit GcnModel(train::ModelHyperparams hyperparams);

  std::string name() const override { return "GCN"; }
  /// Feature-masking approximation only (§4.6): the trained filters are
  /// re-applied to the full graph at predict time.
  bool supports_inductive() const override { return true; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  /// Full forward pass; `hidden` (optional) receives the first-layer output.
  tensor::Tensor ForwardLogits(const graph::HeteroGraph& graph,
                               tensor::Tensor* hidden, bool training);

  train::ModelHyperparams hp_;
  Rng rng_;
  bool initialized_ = false;
  tensor::Tensor w1_, w2_;
  std::unique_ptr<tensor::Adam> optimizer_;
  PerGraphCache<tensor::SparseCsr> adjacency_cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_GCN_H_
