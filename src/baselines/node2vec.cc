#include "baselines/node2vec.h"

#include <algorithm>
#include <cmath>

#include "sampling/random_walk.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

Node2VecModel::Node2VecModel(train::ModelHyperparams hyperparams,
                             Node2VecParams params)
    : hp_(std::move(hyperparams)), nv_(params), rng_(hp_.seed) {}

void Node2VecModel::SgnsUpdate(graph::NodeId center, graph::NodeId context,
                               const sampling::NegativeSampler& sampler,
                               Rng& rng) {
  const int64_t d = hp_.embedding_dim;
  float* v_in = in_embeddings_.data() + static_cast<int64_t>(center) * d;
  std::vector<float> grad_in(static_cast<size_t>(d), 0.0f);
  auto update_pair = [&](graph::NodeId target, float label) {
    float* v_out = out_embeddings_.data() + static_cast<int64_t>(target) * d;
    float dot = 0.0f;
    for (int64_t j = 0; j < d; ++j) dot += v_in[j] * v_out[j];
    const float sigma = 1.0f / (1.0f + std::exp(-dot));
    const float coeff = nv_.sgns_learning_rate * (label - sigma);
    for (int64_t j = 0; j < d; ++j) {
      grad_in[static_cast<size_t>(j)] += coeff * v_out[j];
      v_out[j] += coeff * v_in[j];
    }
  };
  update_pair(context, 1.0f);
  for (graph::NodeId negative :
       sampler.SampleExcluding(context, nv_.negatives, rng)) {
    update_pair(negative, 0.0f);
  }
  for (int64_t j = 0; j < d; ++j) v_in[j] += grad_in[static_cast<size_t>(j)];
}

Status Node2VecModel::Fit(const graph::HeteroGraph& graph,
                          const std::vector<graph::NodeId>& train_nodes) {
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  const int64_t n = graph.num_nodes();
  const int64_t d = hp_.embedding_dim;
  fit_num_nodes_ = n;
  in_embeddings_.assign(static_cast<size_t>(n * d), 0.0f);
  out_embeddings_.assign(static_cast<size_t>(n * d), 0.0f);
  for (float& x : in_embeddings_) {
    x = static_cast<float>((rng_.UniformDouble() - 0.5) / d);
  }

  sampling::NegativeSampler negative_sampler(graph);
  std::vector<graph::NodeId> starts(static_cast<size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) starts[static_cast<size_t>(v)] = v;

  for (int64_t epoch = 0; epoch < nv_.sgns_epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(starts);
    for (graph::NodeId start : starts) {
      for (int64_t w = 0; w < nv_.walks_per_node; ++w) {
        std::vector<graph::NodeId> walk = sampling::SampleNode2VecWalk(
            graph, start, nv_.walk_length, nv_.p, nv_.q, rng_);
        for (size_t i = 0; i < walk.size(); ++i) {
          const size_t lo = i > static_cast<size_t>(nv_.window)
                                ? i - static_cast<size_t>(nv_.window)
                                : 0;
          const size_t hi =
              std::min(walk.size(), i + static_cast<size_t>(nv_.window) + 1);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i) continue;
            SgnsUpdate(walk[i], walk[j], negative_sampler, rng_);
          }
        }
      }
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch, /*loss=*/0.0, watch.ElapsedSeconds());
    }
  }

  // Softmax head on frozen embeddings of the labeled training nodes.
  T::Tensor table = T::Tensor::FromVector(T::Shape::Matrix(n, d),
                                          in_embeddings_);
  std::vector<int32_t> indices(train_nodes.begin(), train_nodes.end());
  std::vector<int32_t> labels;
  labels.reserve(train_nodes.size());
  for (graph::NodeId v : train_nodes) {
    const int32_t y = graph.label(v);
    if (y < 0) {
      return Status::InvalidArgument("unlabeled training node");
    }
    labels.push_back(y);
  }
  classifier_ = T::XavierUniform(T::Shape::Matrix(d, graph.num_classes()),
                                 rng_, "n2v_c");
  T::Adam head_optimizer(0.05f, 0.9f, 0.999f, 1e-8f, hp_.weight_decay);
  head_optimizer.AddParameter(classifier_);
  T::Tensor features = T::GatherRows(table, indices);
  features.DetachInPlace();
  for (int64_t step = 0; step < 200; ++step) {
    T::Tensor loss =
        T::SoftmaxCrossEntropy(T::MatMul(features, classifier_), labels);
    head_optimizer.ZeroGrad();
    loss.Backward();
    head_optimizer.Step();
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<int32_t>> Node2VecModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(graph, nodes));
  return T::ArgMaxRows(T::MatMul(embeddings, classifier_));
}

StatusOr<T::Tensor> Node2VecModel::Embed(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!fitted_) return Status::FailedPrecondition("Embed before Fit");
  if (graph.num_nodes() != fit_num_nodes_) {
    return Status::FailedPrecondition(
        "Node2Vec is transductive: evaluation graph must be the Fit graph");
  }
  const int64_t d = hp_.embedding_dim;
  T::Tensor out(T::Shape::Matrix(static_cast<int64_t>(nodes.size()), d));
  float* dst = out.mutable_data();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const float* src =
        in_embeddings_.data() + static_cast<int64_t>(nodes[i]) * d;
    std::copy(src, src + d, dst + static_cast<int64_t>(i) * d);
  }
  return out;
}

}  // namespace widen::baselines
