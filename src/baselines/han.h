// HAN baseline (Wang et al., 2019): hierarchical attention over meta paths —
// node-level attention aggregates each target's meta-path neighbors, then
// semantic-level attention fuses the per-path representations.
//
// Meta paths are derived from the schema around the labeled node type L:
// L-X-L for every edge type touching L, plus L-X-Y-X-L extensions through
// X's other edge types (yielding e.g. PAP/PSP on ACM and APA/APCPA/APTPA on
// DBLP), capped at kMaxMetaPaths.

#ifndef WIDEN_BASELINES_HAN_H_
#define WIDEN_BASELINES_HAN_H_

#include "baselines/common.h"
#include "graph/metapath.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class HanModel : public train::Model {
 public:
  static constexpr size_t kMaxMetaPaths = 4;

  explicit HanModel(train::ModelHyperparams hyperparams, int64_t fanout = 10);

  std::string name() const override { return "HAN"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

  /// Schema-derived meta paths around the labeled type (exposed for tests).
  static std::vector<graph::MetaPath> DeriveMetaPaths(
      const graph::HeteroGraph& graph);

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  const std::vector<graph::MetaPathAdjacency>& AdjacenciesFor(
      const graph::HeteroGraph& graph);
  /// Node-level attention of one node under one meta path -> [1, d].
  tensor::Tensor NodeLevel(const graph::HeteroGraph& graph,
                           const graph::MetaPathAdjacency& adjacency,
                           size_t path_index, graph::NodeId node, Rng& rng);
  /// Semantic-fused embeddings of a node batch -> [batch, d].
  tensor::Tensor EmbedBatch(const graph::HeteroGraph& graph,
                            const std::vector<graph::NodeId>& nodes, Rng& rng);

  train::ModelHyperparams hp_;
  int64_t fanout_;
  Rng rng_;
  bool initialized_ = false;
  std::vector<graph::MetaPath> paths_;
  std::vector<tensor::Tensor> path_w_;        // [d0, d] per path
  std::vector<tensor::Tensor> path_a_self_;   // [d, 1]
  std::vector<tensor::Tensor> path_a_neigh_;  // [d, 1]
  tensor::Tensor semantic_w_, semantic_b_, semantic_q_;
  tensor::Tensor classifier_;
  std::unique_ptr<tensor::Adam> optimizer_;
  PerGraphCache<std::vector<graph::MetaPathAdjacency>> adjacency_cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_HAN_H_
