#include "baselines/han.h"

#include <algorithm>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

HanModel::HanModel(train::ModelHyperparams hyperparams, int64_t fanout)
    : hp_(std::move(hyperparams)), fanout_(fanout), rng_(hp_.seed) {}

std::vector<graph::MetaPath> HanModel::DeriveMetaPaths(
    const graph::HeteroGraph& graph) {
  const graph::GraphSchema& schema = graph.schema();
  const graph::NodeTypeId labeled = graph.labeled_node_type();
  std::vector<graph::MetaPath> paths;
  for (graph::EdgeTypeId e1 = 0; e1 < schema.num_edge_types(); ++e1) {
    const graph::EdgeTypeSpec& s1 = schema.edge_type(e1);
    if (s1.src_type != labeled && s1.dst_type != labeled) continue;
    const graph::NodeTypeId mid =
        s1.src_type == labeled ? s1.dst_type : s1.src_type;
    // L-X-L.
    paths.push_back(graph::MetaPath{
        schema.node_type_name(labeled) + "-" + schema.node_type_name(mid) +
            "-" + schema.node_type_name(labeled),
        {e1, e1}});
    // L-X-Y-X-L through X's other relations.
    for (graph::EdgeTypeId e2 = 0; e2 < schema.num_edge_types(); ++e2) {
      if (e2 == e1) continue;
      const graph::EdgeTypeSpec& s2 = schema.edge_type(e2);
      if (s2.src_type != mid && s2.dst_type != mid) continue;
      const graph::NodeTypeId far =
          s2.src_type == mid ? s2.dst_type : s2.src_type;
      if (far == labeled) continue;
      paths.push_back(graph::MetaPath{
          schema.node_type_name(labeled) + "-" + schema.node_type_name(mid) +
              "-" + schema.node_type_name(far) + "-" +
              schema.node_type_name(mid) + "-" +
              schema.node_type_name(labeled),
          {e1, e2, e2, e1}});
      if (paths.size() >= kMaxMetaPaths) return paths;
    }
    if (paths.size() >= kMaxMetaPaths) break;
  }
  return paths;
}

Status HanModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  paths_ = DeriveMetaPaths(graph);
  if (paths_.empty()) {
    return Status::FailedPrecondition(
        "no meta paths derivable around the labeled node type");
  }
  const int64_t d0 = graph.feature_dim();
  const int64_t d = hp_.hidden_dim;
  std::vector<T::Tensor> params;
  for (size_t p = 0; p < paths_.size(); ++p) {
    path_w_.push_back(
        T::XavierUniform(T::Shape::Matrix(d0, d), rng_, "han_w"));
    path_a_self_.push_back(
        T::XavierUniform(T::Shape::Matrix(d, 1), rng_, "han_as"));
    path_a_neigh_.push_back(
        T::XavierUniform(T::Shape::Matrix(d, 1), rng_, "han_an"));
    params.push_back(path_w_.back());
    params.push_back(path_a_self_.back());
    params.push_back(path_a_neigh_.back());
  }
  semantic_w_ = T::XavierUniform(T::Shape::Matrix(d, d), rng_, "han_sw");
  semantic_b_ = T::ZeroParam(T::Shape::Matrix(1, d), "han_sb");
  semantic_q_ = T::XavierUniform(T::Shape::Matrix(d, 1), rng_, "han_sq");
  classifier_ =
      T::XavierUniform(T::Shape::Matrix(d, graph.num_classes()), rng_,
                       "han_c");
  params.insert(params.end(),
                {semantic_w_, semantic_b_, semantic_q_, classifier_});
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters(params);
  initialized_ = true;
  return Status::OK();
}

const std::vector<graph::MetaPathAdjacency>& HanModel::AdjacenciesFor(
    const graph::HeteroGraph& graph) {
  return adjacency_cache_.GetOrCreate(graph, [&] {
    std::vector<graph::MetaPathAdjacency> adjacencies;
    for (const graph::MetaPath& path : paths_) {
      auto composed = graph::ComposeMetaPath(graph, path, /*max_neighbors=*/32);
      WIDEN_CHECK(composed.ok()) << composed.status().ToString();
      adjacencies.push_back(std::move(composed).value());
    }
    return adjacencies;
  });
}

T::Tensor HanModel::NodeLevel(const graph::HeteroGraph& graph,
                              const graph::MetaPathAdjacency& adjacency,
                              size_t path_index, graph::NodeId node,
                              Rng& rng) {
  const std::vector<graph::NodeId>& all_neighbors =
      adjacency.neighbors[static_cast<size_t>(node)];
  std::vector<int32_t> indices;
  indices.push_back(node);
  if (static_cast<int64_t>(all_neighbors.size()) <= fanout_) {
    for (graph::NodeId u : all_neighbors) indices.push_back(u);
  } else {
    for (size_t pick :
         rng.SampleWithoutReplacement(all_neighbors.size(),
                                      static_cast<size_t>(fanout_))) {
      indices.push_back(all_neighbors[pick]);
    }
  }
  T::Tensor features = T::GatherRows(graph.features(), indices);
  T::Tensor h = T::MatMul(features, path_w_[path_index]);
  T::Tensor self_row = T::SliceRows(h, 0, 1);
  T::Tensor scores = T::LeakyRelu(
      T::Add(T::MatMul(h, path_a_neigh_[path_index]),
             T::MatMul(self_row, path_a_self_[path_index])),
      0.2f);
  T::Tensor alpha = T::SoftmaxRows(T::Transpose(scores));
  return T::Elu(T::MatMul(alpha, h));
}

T::Tensor HanModel::EmbedBatch(const graph::HeteroGraph& graph,
                               const std::vector<graph::NodeId>& nodes,
                               Rng& rng) {
  const std::vector<graph::MetaPathAdjacency>& adjacencies =
      AdjacenciesFor(graph);
  // Per-path batch representations.
  std::vector<T::Tensor> per_path;
  per_path.reserve(paths_.size());
  for (size_t p = 0; p < paths_.size(); ++p) {
    std::vector<T::Tensor> rows;
    rows.reserve(nodes.size());
    for (graph::NodeId v : nodes) {
      rows.push_back(NodeLevel(graph, adjacencies[p], p, v, rng));
    }
    per_path.push_back(T::ConcatRows(rows));
  }
  // Semantic attention: w_p = mean_v q·tanh(W h_p(v) + b); β = softmax(w).
  std::vector<T::Tensor> path_scores;
  for (const T::Tensor& h_p : per_path) {
    T::Tensor scored = T::MatMul(
        T::Tanh(T::Add(T::MatMul(h_p, semantic_w_), semantic_b_)),
        semantic_q_);
    path_scores.push_back(T::MeanRows(scored));  // [1, 1]
  }
  T::Tensor beta = T::SoftmaxRows(T::ConcatCols(path_scores));  // [1, P]
  T::Tensor fused;
  for (size_t p = 0; p < per_path.size(); ++p) {
    T::Tensor term = T::ScaleBy(per_path[p],
                                T::SliceCols(beta, static_cast<int64_t>(p), 1));
    fused = fused.defined() ? T::Add(fused, term) : term;
  }
  return fused;
}

Status HanModel::Fit(const graph::HeteroGraph& graph,
                     const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  std::vector<graph::NodeId> order = train_nodes;
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(hp_.batch_size)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(hp_.batch_size));
      std::vector<graph::NodeId> batch(order.begin() + begin,
                                       order.begin() + end);
      T::Tensor embeddings = EmbedBatch(graph, batch, rng_);
      T::Tensor logits = T::MatMul(embeddings, classifier_);
      std::vector<int32_t> labels;
      for (graph::NodeId v : batch) labels.push_back(graph.label(v));
      T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels);
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.item();
      ++batches;
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch,
                         batches > 0 ? loss_sum / static_cast<double>(batches)
                                     : 0.0,
                         watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> HanModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(graph, nodes));
  return T::ArgMaxRows(T::MatMul(embeddings, classifier_));
}

StatusOr<T::Tensor> HanModel::Embed(const graph::HeteroGraph& graph,
                                    const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  Rng eval_rng(hp_.seed ^ 0x4A4ULL);
  T::Tensor out = EmbedBatch(graph, nodes, eval_rng);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
