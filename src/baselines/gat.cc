#include "baselines/gat.h"

#include <algorithm>

#include "sampling/neighbor_sampler.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

GatModel::GatModel(train::ModelHyperparams hyperparams, int64_t num_heads,
                   int64_t fanout)
    : hp_(std::move(hyperparams)), num_heads_(num_heads), fanout_(fanout),
      rng_(hp_.seed) {
  WIDEN_CHECK_GT(num_heads_, 0);
}

Status GatModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  const int64_t d0 = graph.feature_dim();
  const int64_t head_dim = std::max<int64_t>(1, hp_.hidden_dim / num_heads_);
  std::vector<T::Tensor> params;
  for (int64_t h = 0; h < num_heads_; ++h) {
    w1_heads_.push_back(
        T::XavierUniform(T::Shape::Matrix(d0, head_dim), rng_, "gat_w1"));
    a1_self_.push_back(
        T::XavierUniform(T::Shape::Matrix(head_dim, 1), rng_, "gat_a1s"));
    a1_neighbor_.push_back(
        T::XavierUniform(T::Shape::Matrix(head_dim, 1), rng_, "gat_a1n"));
    params.push_back(w1_heads_.back());
    params.push_back(a1_self_.back());
    params.push_back(a1_neighbor_.back());
  }
  const int64_t layer1_dim = head_dim * num_heads_;
  w2_ = T::XavierUniform(T::Shape::Matrix(layer1_dim, hp_.hidden_dim), rng_,
                         "gat_w2");
  a2_self_ = T::XavierUniform(T::Shape::Matrix(hp_.hidden_dim, 1), rng_,
                              "gat_a2s");
  a2_neighbor_ = T::XavierUniform(T::Shape::Matrix(hp_.hidden_dim, 1), rng_,
                                  "gat_a2n");
  classifier_ = T::XavierUniform(
      T::Shape::Matrix(hp_.hidden_dim, graph.num_classes()), rng_, "gat_c");
  params.insert(params.end(), {w2_, a2_self_, a2_neighbor_, classifier_});
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters(params);
  initialized_ = true;
  return Status::OK();
}

T::Tensor GatModel::AttentionHead(const T::Tensor& features,
                                  const T::Tensor& w,
                                  const T::Tensor& attn_self,
                                  const T::Tensor& attn_neighbor) {
  // H = X W; scores_i = LeakyReLU(a_s·h_self + a_n·h_i); α = softmax(scores).
  T::Tensor h = T::MatMul(features, w);            // [(K+1), d_h]
  T::Tensor self_row = T::SliceRows(h, 0, 1);      // [1, d_h]
  T::Tensor self_score = T::MatMul(self_row, attn_self);     // [1, 1]
  T::Tensor neighbor_scores = T::MatMul(h, attn_neighbor);   // [(K+1), 1]
  T::Tensor scores =
      T::LeakyRelu(T::Add(neighbor_scores, self_score), 0.2f);
  T::Tensor alpha = T::SoftmaxRows(T::Transpose(scores));    // [1, K+1]
  return T::MatMul(alpha, h);                                // [1, d_h]
}

T::Tensor GatModel::Layer1(const graph::HeteroGraph& graph,
                           graph::NodeId node, Rng& rng) {
  sampling::WideNeighborSet neighbors =
      sampling::SampleWideNeighbors(graph, node, fanout_, rng);
  std::vector<int32_t> indices;
  indices.reserve(neighbors.size() + 1);
  indices.push_back(node);
  for (graph::NodeId u : neighbors.nodes) indices.push_back(u);
  T::Tensor features = T::GatherRows(graph.features(), indices);
  std::vector<T::Tensor> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    heads.push_back(AttentionHead(features, w1_heads_[static_cast<size_t>(h)],
                                  a1_self_[static_cast<size_t>(h)],
                                  a1_neighbor_[static_cast<size_t>(h)]));
  }
  return T::Elu(heads.size() == 1 ? heads[0] : T::ConcatCols(heads));
}

T::Tensor GatModel::EmbedOne(const graph::HeteroGraph& graph,
                             graph::NodeId node, Rng& rng) {
  sampling::WideNeighborSet neighbors =
      sampling::SampleWideNeighbors(graph, node, fanout_, rng);
  std::vector<T::Tensor> rows;
  rows.reserve(neighbors.size() + 1);
  rows.push_back(Layer1(graph, node, rng));
  for (graph::NodeId u : neighbors.nodes) {
    rows.push_back(Layer1(graph, u, rng));
  }
  T::Tensor h1 = rows.size() == 1 ? rows[0] : T::ConcatRows(rows);
  return T::Elu(AttentionHead(h1, w2_, a2_self_, a2_neighbor_));
}

Status GatModel::Fit(const graph::HeteroGraph& graph,
                     const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  std::vector<graph::NodeId> order = train_nodes;
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(hp_.batch_size)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(hp_.batch_size));
      std::vector<T::Tensor> rows;
      std::vector<int32_t> labels;
      for (size_t i = begin; i < end; ++i) {
        rows.push_back(EmbedOne(graph, order[i], rng_));
        labels.push_back(graph.label(order[i]));
      }
      T::Tensor logits = T::MatMul(T::ConcatRows(rows), classifier_);
      T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels);
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.item();
      ++batches;
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch,
                         batches > 0 ? loss_sum / static_cast<double>(batches)
                                     : 0.0,
                         watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> GatModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(graph, nodes));
  return T::ArgMaxRows(T::MatMul(embeddings, classifier_));
}

StatusOr<T::Tensor> GatModel::Embed(const graph::HeteroGraph& graph,
                                    const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  Rng eval_rng(hp_.seed ^ 0x6A7ULL);
  std::vector<T::Tensor> rows;
  rows.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    T::Tensor row = EmbedOne(graph, v, eval_rng);
    row.DetachInPlace();
    rows.push_back(row);
  }
  T::Tensor out = T::ConcatRows(rows);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
