// Node2Vec baseline (Grover & Leskovec, 2016): biased second-order random
// walks feeding skip-gram with negative sampling, trained unsupervised with
// direct SGD on the embedding arrays (no autograd tape — SGNS updates are
// closed-form and this is how the reference implementation works). A softmax
// classifier is then fitted on the frozen embeddings of the training nodes.
//
// Transductive only: embeddings are tied to node identities.

#ifndef WIDEN_BASELINES_NODE2VEC_H_
#define WIDEN_BASELINES_NODE2VEC_H_

#include "sampling/negative_sampler.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class Node2VecModel : public train::Model {
 public:
  struct Node2VecParams {
    double p = 1.0;          // return parameter
    double q = 1.0;          // in-out parameter
    int64_t walks_per_node = 5;
    int64_t walk_length = 20;
    int64_t window = 5;
    int64_t negatives = 5;
    int64_t sgns_epochs = 2;
    float sgns_learning_rate = 0.025f;
  };

  explicit Node2VecModel(train::ModelHyperparams hyperparams)
      : Node2VecModel(std::move(hyperparams), Node2VecParams()) {}
  Node2VecModel(train::ModelHyperparams hyperparams, Node2VecParams params);

  std::string name() const override { return "Node2Vec"; }
  /// Embeddings are per-node-id lookup tables; unseen nodes are impossible.
  bool supports_inductive() const override { return false; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  /// One SGNS update for (center, context) plus negatives.
  void SgnsUpdate(graph::NodeId center, graph::NodeId context,
                  const sampling::NegativeSampler& sampler, Rng& rng);

  train::ModelHyperparams hp_;
  Node2VecParams nv_;
  Rng rng_;
  bool fitted_ = false;
  int64_t fit_num_nodes_ = 0;
  std::vector<float> in_embeddings_;   // [N, d] row-major
  std::vector<float> out_embeddings_;  // [N, d] context vectors
  tensor::Tensor classifier_;          // [d, c] softmax head
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_NODE2VEC_H_
