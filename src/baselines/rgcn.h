// RGCN (Schlichtkrull et al., 2018) — bonus baseline beyond Table 2 (the
// paper discusses it in §5.2 as the early heterogeneous GNN): one linear
// projection per edge type, summed with a self-connection, two layers,
// full-batch masked cross-entropy.

#ifndef WIDEN_BASELINES_RGCN_H_
#define WIDEN_BASELINES_RGCN_H_

#include "baselines/common.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class RgcnModel : public train::Model {
 public:
  explicit RgcnModel(train::ModelHyperparams hyperparams);

  std::string name() const override { return "RGCN"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  tensor::Tensor ForwardLogits(const graph::HeteroGraph& graph,
                               tensor::Tensor* hidden);

  train::ModelHyperparams hp_;
  Rng rng_;
  bool initialized_ = false;
  std::vector<tensor::Tensor> w1_per_type_;  // [d0, d] per edge type
  tensor::Tensor w1_self_;                   // [d0, d]
  std::vector<tensor::Tensor> w2_per_type_;  // [d, c] per edge type
  tensor::Tensor w2_self_;                   // [d, c]
  std::unique_ptr<tensor::Adam> optimizer_;
  PerGraphCache<std::vector<tensor::SparseCsr>> adjacency_cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_RGCN_H_
