// GAT baseline (Veličković et al., 2018): two layers of additive attention
// over sampled first-order neighborhoods (the neighborhood-sampling reading
// of GAT used by the paper), multi-head in the first layer.

#ifndef WIDEN_BASELINES_GAT_H_
#define WIDEN_BASELINES_GAT_H_

#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class GatModel : public train::Model {
 public:
  explicit GatModel(train::ModelHyperparams hyperparams, int64_t num_heads = 2,
                    int64_t fanout = 8);

  std::string name() const override { return "GAT"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  /// One attention head applied to [self; neighbors] feature rows.
  /// `features` is [(K+1), in_dim] with the self row first.
  tensor::Tensor AttentionHead(const tensor::Tensor& features,
                               const tensor::Tensor& w,
                               const tensor::Tensor& attn_self,
                               const tensor::Tensor& attn_neighbor);
  /// Layer-1 representation (heads concatenated, ELU).
  tensor::Tensor Layer1(const graph::HeteroGraph& graph, graph::NodeId node,
                        Rng& rng);
  tensor::Tensor EmbedOne(const graph::HeteroGraph& graph, graph::NodeId node,
                          Rng& rng);

  train::ModelHyperparams hp_;
  int64_t num_heads_;
  int64_t fanout_;
  Rng rng_;
  bool initialized_ = false;
  std::vector<tensor::Tensor> w1_heads_;      // [d0, d/h] per head
  std::vector<tensor::Tensor> a1_self_;       // [d/h, 1] per head
  std::vector<tensor::Tensor> a1_neighbor_;   // [d/h, 1] per head
  tensor::Tensor w2_, a2_self_, a2_neighbor_;  // second (single-head) layer
  tensor::Tensor classifier_;
  std::unique_ptr<tensor::Adam> optimizer_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_GAT_H_
