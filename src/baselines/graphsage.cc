#include "baselines/graphsage.h"

#include <algorithm>

#include "sampling/neighbor_sampler.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

GraphSageModel::GraphSageModel(train::ModelHyperparams hyperparams,
                               int64_t fanout1, int64_t fanout2)
    : hp_(std::move(hyperparams)),
      fanout1_(fanout1),
      fanout2_(fanout2),
      rng_(hp_.seed) {}

Status GraphSageModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  const int64_t d0 = graph.feature_dim();
  const int64_t d = hp_.hidden_dim;
  w1_ = T::XavierUniform(T::Shape::Matrix(2 * d0, d), rng_, "sage_w1");
  w2_ = T::XavierUniform(T::Shape::Matrix(2 * d, d), rng_, "sage_w2");
  classifier_ = T::XavierUniform(T::Shape::Matrix(d, graph.num_classes()),
                                 rng_, "sage_c");
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters({w1_, w2_, classifier_});
  initialized_ = true;
  return Status::OK();
}

T::Tensor GraphSageModel::Layer1(const graph::HeteroGraph& graph,
                                 graph::NodeId node, Rng& rng) {
  T::Tensor self = T::GatherRows(graph.features(), {node});
  sampling::WideNeighborSet neighbors =
      sampling::SampleWideNeighbors(graph, node, fanout2_, rng);
  T::Tensor neighborhood_mean;
  if (neighbors.size() > 0) {
    std::vector<int32_t> idx(neighbors.nodes.begin(), neighbors.nodes.end());
    neighborhood_mean = T::MeanRows(T::GatherRows(graph.features(), idx));
  } else {
    neighborhood_mean = T::Tensor(self.shape());
  }
  return T::Relu(T::MatMul(T::ConcatCols({self, neighborhood_mean}), w1_));
}

T::Tensor GraphSageModel::EmbedOne(const graph::HeteroGraph& graph,
                                   graph::NodeId node, Rng& rng) {
  T::Tensor self_h1 = Layer1(graph, node, rng);
  sampling::WideNeighborSet neighbors =
      sampling::SampleWideNeighbors(graph, node, fanout1_, rng);
  T::Tensor neighborhood_mean;
  if (neighbors.size() > 0) {
    std::vector<T::Tensor> rows;
    rows.reserve(neighbors.size());
    for (graph::NodeId u : neighbors.nodes) {
      rows.push_back(Layer1(graph, u, rng));
    }
    neighborhood_mean = T::MeanRows(T::ConcatRows(rows));
  } else {
    neighborhood_mean = T::Tensor(self_h1.shape());
  }
  T::Tensor h2 =
      T::Relu(T::MatMul(T::ConcatCols({self_h1, neighborhood_mean}), w2_));
  return T::RowL2Normalize(h2);
}

Status GraphSageModel::Fit(const graph::HeteroGraph& graph,
                           const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  std::vector<graph::NodeId> order = train_nodes;
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(hp_.batch_size)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(hp_.batch_size));
      std::vector<T::Tensor> rows;
      std::vector<int32_t> labels;
      for (size_t i = begin; i < end; ++i) {
        rows.push_back(EmbedOne(graph, order[i], rng_));
        labels.push_back(graph.label(order[i]));
      }
      T::Tensor logits = T::MatMul(T::ConcatRows(rows), classifier_);
      T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels);
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.item();
      ++batches;
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch,
                         batches > 0 ? loss_sum / static_cast<double>(batches)
                                     : 0.0,
                         watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> GraphSageModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(graph, nodes));
  return T::ArgMaxRows(T::MatMul(embeddings, classifier_));
}

StatusOr<T::Tensor> GraphSageModel::Embed(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  Rng eval_rng(hp_.seed ^ 0x5A6EULL);
  std::vector<T::Tensor> rows;
  rows.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    T::Tensor row = EmbedOne(graph, v, eval_rng);
    row.DetachInPlace();
    rows.push_back(row);
  }
  T::Tensor out = T::ConcatRows(rows);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
