#include "baselines/hgt.h"

#include <algorithm>
#include <cmath>

#include "sampling/neighbor_sampler.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

HgtModel::HgtModel(train::ModelHyperparams hyperparams, int64_t fanout)
    : hp_(std::move(hyperparams)), fanout_(fanout), rng_(hp_.seed) {}

Status HgtModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  const int64_t d0 = graph.feature_dim();
  const int64_t d = hp_.hidden_dim;
  std::vector<T::Tensor> params;
  w_in_ = T::XavierUniform(T::Shape::Matrix(d0, d), rng_, "hgt_win");
  params.push_back(w_in_);
  for (graph::NodeTypeId t = 0; t < graph.schema().num_node_types(); ++t) {
    w_query_.push_back(
        T::XavierUniform(T::Shape::Matrix(d, d), rng_, "hgt_wq"));
    params.push_back(w_query_.back());
  }
  for (graph::EdgeTypeId e = 0; e < graph.schema().num_edge_types(); ++e) {
    w_key_.push_back(T::XavierUniform(T::Shape::Matrix(d, d), rng_, "hgt_wk"));
    w_value_.push_back(
        T::XavierUniform(T::Shape::Matrix(d, d), rng_, "hgt_wv"));
    relation_prior_.push_back(
        T::Tensor::Full(T::Shape::Matrix(1, 1), 1.0f));
    relation_prior_.back().set_requires_grad(true).set_label("hgt_mu");
    params.push_back(w_key_.back());
    params.push_back(w_value_.back());
    params.push_back(relation_prior_.back());
  }
  w_out_ = T::XavierUniform(T::Shape::Matrix(d, d), rng_, "hgt_wout");
  classifier_ =
      T::XavierUniform(T::Shape::Matrix(d, graph.num_classes()), rng_,
                       "hgt_c");
  params.push_back(w_out_);
  params.push_back(classifier_);
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters(params);
  initialized_ = true;
  return Status::OK();
}

T::Tensor HgtModel::EmbedOne(const graph::HeteroGraph& graph,
                             graph::NodeId node, Rng& rng) {
  const int64_t d = hp_.hidden_dim;
  T::Tensor h_self = T::MatMul(T::GatherRows(graph.features(), {node}), w_in_);
  sampling::WideNeighborSet neighbors =
      sampling::SampleWideNeighbors(graph, node, fanout_, rng);
  if (neighbors.size() == 0) {
    return T::RowL2Normalize(T::Relu(T::MatMul(h_self, w_out_)));
  }
  T::Tensor query = T::MatMul(
      h_self, w_query_[static_cast<size_t>(graph.node_type(node))]);

  // Group neighbors by edge type so each group shares its K/V projections.
  std::vector<T::Tensor> key_rows, value_rows;
  std::vector<float> prior_of_row;
  for (graph::EdgeTypeId e = 0;
       e < graph.schema().num_edge_types(); ++e) {
    std::vector<int32_t> group;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors.edge_types[i] == e) group.push_back(neighbors.nodes[i]);
    }
    if (group.empty()) continue;
    T::Tensor h_group =
        T::MatMul(T::GatherRows(graph.features(), group), w_in_);
    key_rows.push_back(
        T::MatMul(h_group, w_key_[static_cast<size_t>(e)]));
    value_rows.push_back(
        T::MatMul(h_group, w_value_[static_cast<size_t>(e)]));
    for (size_t i = 0; i < group.size(); ++i) {
      prior_of_row.push_back(
          relation_prior_[static_cast<size_t>(e)].data()[0]);
    }
  }
  T::Tensor keys = T::ConcatRows(key_rows);
  T::Tensor values = T::ConcatRows(value_rows);
  // Attention with the relation prior as a multiplicative bias on scores.
  // (The prior enters as a constant within one step; its gradient flows via a
  // separate additive term in the full HGT — here it modulates scores only,
  // which preserves the ranking behaviour at a fraction of the tape size.)
  T::Tensor scores = T::Scale(T::MatMul(query, T::Transpose(keys)),
                              1.0f / std::sqrt(static_cast<float>(d)));
  T::Tensor prior(T::Shape::Matrix(1, static_cast<int64_t>(prior_of_row.size())));
  std::copy(prior_of_row.begin(), prior_of_row.end(), prior.mutable_data());
  scores = T::Mul(scores, prior);
  T::Tensor alpha = T::SoftmaxRows(scores);
  T::Tensor context = T::MatMul(alpha, values);
  // Residual update: H = ReLU(context W_out) + h_self.
  T::Tensor updated = T::Add(T::Relu(T::MatMul(context, w_out_)), h_self);
  return T::RowL2Normalize(updated);
}

Status HgtModel::Fit(const graph::HeteroGraph& graph,
                     const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  std::vector<graph::NodeId> order = train_nodes;
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    rng_.Shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(hp_.batch_size)) {
      const size_t end =
          std::min(order.size(), begin + static_cast<size_t>(hp_.batch_size));
      std::vector<T::Tensor> rows;
      std::vector<int32_t> labels;
      for (size_t i = begin; i < end; ++i) {
        rows.push_back(EmbedOne(graph, order[i], rng_));
        labels.push_back(graph.label(order[i]));
      }
      T::Tensor logits = T::MatMul(T::ConcatRows(rows), classifier_);
      T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels);
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.item();
      ++batches;
    }
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch,
                         batches > 0 ? loss_sum / static_cast<double>(batches)
                                     : 0.0,
                         watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> HgtModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  WIDEN_ASSIGN_OR_RETURN(T::Tensor embeddings, Embed(graph, nodes));
  return T::ArgMaxRows(T::MatMul(embeddings, classifier_));
}

StatusOr<T::Tensor> HgtModel::Embed(const graph::HeteroGraph& graph,
                                    const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  Rng eval_rng(hp_.seed ^ 0x67ULL);
  std::vector<T::Tensor> rows;
  rows.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    T::Tensor row = EmbedOne(graph, v, eval_rng);
    row.DetachInPlace();
    rows.push_back(row);
  }
  T::Tensor out = T::ConcatRows(rows);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
