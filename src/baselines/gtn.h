// GTN baseline (Yun et al., 2019): soft selection of edge types composed
// into 2-hop meta-path adjacencies, followed by graph convolution.
//
// This implementation keeps one channel with two selection layers: the
// composite propagation is Σ_{t1,t2} α¹_{t1} α²_{t2} A_{t2} A_{t1}, where the
// per-type adjacencies A_t (plus the identity "skip" relation) are fixed and
// the selection weights α are softmax-parameterized and learned end-to-end.

#ifndef WIDEN_BASELINES_GTN_H_
#define WIDEN_BASELINES_GTN_H_

#include "baselines/common.h"
#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class GtnModel : public train::Model {
 public:
  explicit GtnModel(train::ModelHyperparams hyperparams);

  std::string name() const override { return "GTN"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  /// Full-graph forward; hidden (optional) receives the composite-conv
  /// representation.
  tensor::Tensor ForwardLogits(const graph::HeteroGraph& graph,
                               tensor::Tensor* hidden);

  train::ModelHyperparams hp_;
  Rng rng_;
  bool initialized_ = false;
  tensor::Tensor w1_, w2_;
  tensor::Tensor select1_, select2_;  // [1, num_relations] logits
  std::unique_ptr<tensor::Adam> optimizer_;
  // Per-graph: typed adjacencies + identity, indexed by relation.
  PerGraphCache<std::vector<tensor::SparseCsr>> relations_cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_GTN_H_
