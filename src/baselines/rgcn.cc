#include "baselines/rgcn.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace widen::baselines {

namespace T = widen::tensor;

RgcnModel::RgcnModel(train::ModelHyperparams hyperparams)
    : hp_(std::move(hyperparams)), rng_(hp_.seed) {}

Status RgcnModel::EnsureInitialized(const graph::HeteroGraph& graph) {
  if (initialized_) return Status::OK();
  if (!graph.features().defined() || !graph.has_labels()) {
    return Status::FailedPrecondition("graph needs features and labels");
  }
  const int64_t d0 = graph.feature_dim();
  const int64_t d = hp_.hidden_dim;
  const int32_t c = graph.num_classes();
  std::vector<T::Tensor> params;
  for (graph::EdgeTypeId e = 0; e < graph.schema().num_edge_types(); ++e) {
    w1_per_type_.push_back(
        T::XavierUniform(T::Shape::Matrix(d0, d), rng_, "rgcn_w1"));
    w2_per_type_.push_back(
        T::XavierUniform(T::Shape::Matrix(d, c), rng_, "rgcn_w2"));
    params.push_back(w1_per_type_.back());
    params.push_back(w2_per_type_.back());
  }
  w1_self_ = T::XavierUniform(T::Shape::Matrix(d0, d), rng_, "rgcn_w1s");
  w2_self_ = T::XavierUniform(T::Shape::Matrix(d, c), rng_, "rgcn_w2s");
  params.push_back(w1_self_);
  params.push_back(w2_self_);
  optimizer_ = std::make_unique<T::Adam>(hp_.learning_rate, 0.9f, 0.999f,
                                         1e-8f, hp_.weight_decay);
  optimizer_->AddParameters(params);
  initialized_ = true;
  return Status::OK();
}

T::Tensor RgcnModel::ForwardLogits(const graph::HeteroGraph& graph,
                                   T::Tensor* hidden) {
  const std::vector<T::SparseCsr>& adjacencies = adjacency_cache_.GetOrCreate(
      graph, [&] {
        std::vector<T::SparseCsr> rel;
        for (graph::EdgeTypeId t = 0; t < graph.schema().num_edge_types();
             ++t) {
          rel.push_back(TypedRowNormalizedAdjacency(graph, t));
        }
        return rel;
      });
  // Layer 1: H = ReLU(X W_self + Σ_r A_r X W_r).
  T::Tensor h = T::MatMul(graph.features(), w1_self_);
  for (size_t r = 0; r < adjacencies.size(); ++r) {
    h = T::Add(h, T::SparseMatMul(adjacencies[r],
                                  T::MatMul(graph.features(), w1_per_type_[r])));
  }
  h = T::Relu(h);
  if (hidden != nullptr) *hidden = h;
  // Layer 2 (to logits).
  T::Tensor logits = T::MatMul(h, w2_self_);
  for (size_t r = 0; r < adjacencies.size(); ++r) {
    logits = T::Add(
        logits, T::SparseMatMul(adjacencies[r], T::MatMul(h, w2_per_type_[r])));
  }
  return logits;
}

Status RgcnModel::Fit(const graph::HeteroGraph& graph,
                      const std::vector<graph::NodeId>& train_nodes) {
  WIDEN_RETURN_IF_ERROR(EnsureInitialized(graph));
  if (train_nodes.empty()) {
    return Status::InvalidArgument("no training nodes");
  }
  const std::vector<float> mask = TrainMask(graph.num_nodes(), train_nodes);
  const std::vector<int32_t> labels = MaskedLabels(graph);
  for (int64_t epoch = 0; epoch < hp_.epochs; ++epoch) {
    StopWatch watch;
    T::Tensor logits = ForwardLogits(graph, nullptr);
    T::Tensor loss = T::SoftmaxCrossEntropy(logits, labels, &mask);
    optimizer_->ZeroGrad();
    loss.Backward();
    optimizer_->Step();
    if (hp_.epoch_observer) {
      hp_.epoch_observer(epoch, loss.item(), watch.ElapsedSeconds());
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int32_t>> RgcnModel::Predict(
    const graph::HeteroGraph& graph, const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Predict before Fit");
  T::Tensor logits = ForwardLogits(graph, nullptr);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  return T::ArgMaxRows(T::GatherRows(logits, indices));
}

StatusOr<T::Tensor> RgcnModel::Embed(const graph::HeteroGraph& graph,
                                     const std::vector<graph::NodeId>& nodes) {
  if (!initialized_) return Status::FailedPrecondition("Embed before Fit");
  T::Tensor hidden;
  ForwardLogits(graph, &hidden);
  std::vector<int32_t> indices(nodes.begin(), nodes.end());
  T::Tensor out = T::GatherRows(hidden, indices);
  out.DetachInPlace();
  return out;
}

}  // namespace widen::baselines
