// Helpers shared by the baseline implementations: normalized adjacencies,
// label masks, and the per-graph adjacency cache.

#ifndef WIDEN_BASELINES_COMMON_H_
#define WIDEN_BASELINES_COMMON_H_

#include <unordered_map>
#include <vector>

#include "graph/hetero_graph.h"
#include "tensor/sparse.h"

namespace widen::baselines {

/// GCN propagation matrix: D^{-1/2} (A + I) D^{-1/2}, edge types ignored.
tensor::SparseCsr NormalizedAdjacency(const graph::HeteroGraph& graph);

/// Row-normalized adjacency restricted to edges of one type. With
/// `include_identity`, pass -1 as the type to get the identity matrix
/// (GTN's "no-op" relation).
tensor::SparseCsr TypedRowNormalizedAdjacency(const graph::HeteroGraph& graph,
                                              graph::EdgeTypeId edge_type);

/// Identity matrix as CSR.
tensor::SparseCsr IdentityCsr(int64_t n);

/// Per-node weights: 1 on `train` nodes, 0 elsewhere (masked-loss training).
std::vector<float> TrainMask(int64_t num_nodes,
                             const std::vector<graph::NodeId>& train_nodes);

/// All node labels with unlabeled entries mapped to class 0 (they must be
/// masked out by a zero weight).
std::vector<int32_t> MaskedLabels(const graph::HeteroGraph& graph);

/// Caches one value per graph identity (baselines rebuild propagation
/// matrices when Predict() is called on a different graph than Fit()).
template <typename V>
class PerGraphCache {
 public:
  template <typename MakeFn>
  const V& GetOrCreate(const graph::HeteroGraph& graph, MakeFn make) {
    auto it = cache_.find(&graph);
    if (it == cache_.end()) {
      it = cache_.emplace(&graph, make()).first;
    }
    return it->second;
  }

 private:
  std::unordered_map<const graph::HeteroGraph*, V> cache_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_COMMON_H_
