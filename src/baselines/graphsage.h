// GraphSAGE baseline (Hamilton, Ying & Leskovec, 2017): two mean-aggregator
// layers over uniformly sampled neighborhoods, mini-batch trained and
// inductive by construction.

#ifndef WIDEN_BASELINES_GRAPHSAGE_H_
#define WIDEN_BASELINES_GRAPHSAGE_H_

#include "tensor/optimizer.h"
#include "train/model.h"
#include "util/random.h"

namespace widen::baselines {

class GraphSageModel : public train::Model {
 public:
  /// `fanout1`/`fanout2` are the neighbor sample sizes of layers 2 and 1.
  explicit GraphSageModel(train::ModelHyperparams hyperparams,
                          int64_t fanout1 = 10, int64_t fanout2 = 5);

  std::string name() const override { return "GraphSAGE"; }

  Status Fit(const graph::HeteroGraph& graph,
             const std::vector<graph::NodeId>& train_nodes) override;
  StatusOr<std::vector<int32_t>> Predict(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;
  StatusOr<tensor::Tensor> Embed(
      const graph::HeteroGraph& graph,
      const std::vector<graph::NodeId>& nodes) override;

 private:
  Status EnsureInitialized(const graph::HeteroGraph& graph);
  /// h1(u) = ReLU(W1 [x_u ; mean of sampled neighbor features]).
  tensor::Tensor Layer1(const graph::HeteroGraph& graph, graph::NodeId node,
                        Rng& rng);
  /// Full two-layer embedding of one node, L2-normalized.
  tensor::Tensor EmbedOne(const graph::HeteroGraph& graph, graph::NodeId node,
                          Rng& rng);

  train::ModelHyperparams hp_;
  int64_t fanout1_;
  int64_t fanout2_;
  Rng rng_;
  bool initialized_ = false;
  tensor::Tensor w1_, w2_, classifier_;
  std::unique_ptr<tensor::Adam> optimizer_;
};

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_GRAPHSAGE_H_
