// Name-based model factory used by the benchmark harnesses.

#ifndef WIDEN_BASELINES_REGISTRY_H_
#define WIDEN_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/widen_config.h"
#include "train/model.h"
#include "util/status.h"

namespace widen::baselines {

/// Model names in the row order of Table 2 (WIDEN last).
std::vector<std::string> AvailableModels();

/// Creates a model by Table 2 name ("Node2Vec", "GCN", "FastGCN",
/// "GraphSAGE", "GAT", "GTN", "HAN", "HGT", "WIDEN"). The common hyperparams
/// are mapped onto each family's knobs; WIDEN derives a WidenConfig from
/// them (paper §4.4 downsampling defaults).
StatusOr<std::unique_ptr<train::Model>> CreateModel(
    const std::string& name, const train::ModelHyperparams& hyperparams);

/// WidenConfig matching what CreateModel("WIDEN", hp) uses.
core::WidenConfig WidenConfigFromHyperparams(
    const train::ModelHyperparams& hyperparams);

}  // namespace widen::baselines

#endif  // WIDEN_BASELINES_REGISTRY_H_
