// Read-only topology/feature interface shared by the immutable HeteroGraph
// and the serving-time delta overlays (serve/graph_delta.h).
//
// The samplers and the shared encode path (core/encoder.h) are written
// against this interface so that a graph grown by post-training deltas is
// traversed with the exact same code — and therefore the exact same bits —
// as a fully materialized HeteroGraph. Implementations must present each
// node's neighbors sorted by (neighbor, edge_type), matching the CSR
// ordering, so sampling draws are identical across backings.

#ifndef WIDEN_GRAPH_GRAPH_VIEW_H_
#define WIDEN_GRAPH_GRAPH_VIEW_H_

#include "graph/csr.h"
#include "graph/hetero_graph.h"
#include "graph/schema.h"

namespace widen::graph {

/// Abstract read-only heterogeneous graph. All accessors must be safe for
/// concurrent readers as long as no writer is mutating the backing store.
class GraphView {
 public:
  virtual ~GraphView() = default;

  virtual const GraphSchema& schema() const = 0;
  virtual int64_t num_nodes() const = 0;
  virtual NodeTypeId node_type(NodeId v) const = 0;
  virtual int64_t degree(NodeId v) const = 0;
  /// Contiguous neighbor slice of v, sorted by (neighbor, edge_type).
  /// Pointers are valid while the view's backing storage is unmodified.
  virtual Csr::NeighborSpan neighbors(NodeId v) const = 0;
  virtual int64_t feature_dim() const = 0;
  /// Pointer to v's `feature_dim()` raw features (never differentiable).
  virtual const float* feature_row(NodeId v) const = 0;
};

/// Zero-copy adapter presenting a HeteroGraph as a GraphView. The graph must
/// outlive the view. Cheap to construct on the stack.
class HeteroGraphView final : public GraphView {
 public:
  explicit HeteroGraphView(const HeteroGraph& graph) : graph_(&graph) {}

  const GraphSchema& schema() const override { return graph_->schema(); }
  int64_t num_nodes() const override { return graph_->num_nodes(); }
  NodeTypeId node_type(NodeId v) const override { return graph_->node_type(v); }
  int64_t degree(NodeId v) const override { return graph_->degree(v); }
  Csr::NeighborSpan neighbors(NodeId v) const override {
    return graph_->neighbors(v);
  }
  int64_t feature_dim() const override { return graph_->feature_dim(); }
  const float* feature_row(NodeId v) const override {
    WIDEN_DCHECK(v >= 0 && v < graph_->num_nodes());
    return graph_->features().data() + v * graph_->feature_dim();
  }

  const HeteroGraph& graph() const { return *graph_; }

 private:
  const HeteroGraph* graph_;
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_GRAPH_VIEW_H_
