#include "graph/subgraph.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace widen::graph {

StatusOr<Subgraph> SubgraphExtractor::Induced(
    const HeteroGraph& parent, const std::vector<NodeId>& kept_nodes) {
  const int64_t parent_n = parent.num_nodes();
  Subgraph result;
  result.from_parent.assign(static_cast<size_t>(parent_n), -1);
  result.to_parent.reserve(kept_nodes.size());

  std::vector<NodeId> sorted = kept_nodes;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const NodeId old_id = sorted[i];
    if (old_id < 0 || old_id >= parent_n) {
      return Status::OutOfRange(StrCat("kept node ", old_id, " out of range"));
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(StrCat("duplicate kept node ", old_id));
    }
    result.from_parent[static_cast<size_t>(old_id)] =
        static_cast<NodeId>(result.to_parent.size());
    result.to_parent.push_back(old_id);
  }

  HeteroGraph& g = result.graph;
  g.schema_ = parent.schema();
  g.node_types_.reserve(result.to_parent.size());
  for (NodeId old_id : result.to_parent) {
    g.node_types_.push_back(parent.node_type(old_id));
  }
  g.nodes_by_type_.assign(
      static_cast<size_t>(g.schema_.num_node_types()), {});
  for (NodeId v = 0; v < static_cast<NodeId>(g.node_types_.size()); ++v) {
    g.nodes_by_type_[static_cast<size_t>(
                         g.node_types_[static_cast<size_t>(v)])]
        .push_back(v);
  }

  // Re-emit surviving half-edges under the new ids.
  std::vector<std::tuple<NodeId, NodeId, EdgeTypeId>> half_edges;
  for (NodeId new_u = 0; new_u < static_cast<NodeId>(result.to_parent.size());
       ++new_u) {
    const NodeId old_u = result.to_parent[static_cast<size_t>(new_u)];
    Csr::NeighborSpan span = parent.neighbors(old_u);
    for (int64_t i = 0; i < span.size; ++i) {
      const NodeId new_v =
          result.from_parent[static_cast<size_t>(span.neighbors[i])];
      if (new_v >= 0) half_edges.emplace_back(new_u, new_v, span.edge_types[i]);
    }
  }
  g.csr_ = Csr::FromHalfEdges(static_cast<int64_t>(g.node_types_.size()),
                              half_edges);

  if (parent.features().defined()) {
    const int64_t d = parent.feature_dim();
    tensor::Tensor feats(
        tensor::Shape::Matrix(static_cast<int64_t>(result.to_parent.size()), d));
    float* dst = feats.mutable_data();
    const float* src = parent.features().data();
    for (size_t i = 0; i < result.to_parent.size(); ++i) {
      std::memcpy(dst + static_cast<int64_t>(i) * d,
                  src + static_cast<int64_t>(result.to_parent[i]) * d,
                  static_cast<size_t>(d) * sizeof(float));
    }
    g.features_ = std::move(feats);
  }
  if (parent.has_labels()) {
    g.labels_.reserve(result.to_parent.size());
    for (NodeId old_id : result.to_parent) {
      g.labels_.push_back(parent.label(old_id));
    }
    g.num_classes_ = parent.num_classes();
    g.labeled_node_type_ = parent.labeled_node_type();
  }
  return result;
}

}  // namespace widen::graph
