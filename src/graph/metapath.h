// Meta-path utilities for the meta path-based baselines (HAN, GTN).
//
// A meta path is a sequence of edge types, e.g. paper-author / author-paper
// (PAP). Composing the typed adjacencies along the sequence yields, for every
// node of the path's start type, the set of nodes reachable by following the
// path — the "meta-path neighbors" that HAN aggregates over.

#ifndef WIDEN_GRAPH_METAPATH_H_
#define WIDEN_GRAPH_METAPATH_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace widen::graph {

/// A meta path as an edge-type sequence; `name` is cosmetic ("PAP").
struct MetaPath {
  std::string name;
  std::vector<EdgeTypeId> edge_types;
};

/// Adjacency induced by one meta path: `neighbors[v]` lists the distinct
/// endpoints reachable from v along the path (deduplicated, sorted, self
/// excluded, capped at `max_neighbors` by frequency then id).
struct MetaPathAdjacency {
  MetaPath path;
  std::vector<std::vector<NodeId>> neighbors;
};

/// Composes the typed adjacencies along `path`. `max_neighbors` bounds memory
/// on hub nodes (0 = unlimited).
StatusOr<MetaPathAdjacency> ComposeMetaPath(const HeteroGraph& graph,
                                            const MetaPath& path,
                                            int64_t max_neighbors = 64);

/// Derives the standard symmetric 2-hop meta paths X-E-Y-E-X for every edge
/// type E whose endpoint types differ — the schema-driven default used when a
/// dataset does not hand-pick meta paths (e.g. PAP and PSP on ACM).
std::vector<MetaPath> DefaultSymmetricMetaPaths(const GraphSchema& schema);

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_METAPATH_H_
