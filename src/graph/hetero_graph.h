// The heterogeneous graph container: typed nodes, typed undirected edges,
// node features, and (optionally) class labels on one node type.

#ifndef WIDEN_GRAPH_HETERO_GRAPH_H_
#define WIDEN_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/schema.h"
#include "tensor/tensor.h"

namespace widen::graph {

/// Immutable heterogeneous graph (Definition 1). Construct via GraphBuilder.
///
/// Node ids are dense in [0, num_nodes). Edges are undirected and typed;
/// the CSR stores both half-edges. Features are a dense [num_nodes, feat_dim]
/// matrix; labels are -1 for unlabeled nodes.
class HeteroGraph {
 public:
  HeteroGraph();

  // Identity semantics: `uid()` names this graph *instance*. Copies are new
  // graphs (fresh uid); moves transfer the identity (the moved-from shell
  // gets a fresh uid). Anything caching per-graph state must key on uid(),
  // never on the object's address — a destroyed graph followed by an
  // allocation at the same address would otherwise silently serve stale
  // state (see WidenModel's embedding caches).
  HeteroGraph(const HeteroGraph& other);
  HeteroGraph& operator=(const HeteroGraph& other);
  HeteroGraph(HeteroGraph&& other) noexcept;
  HeteroGraph& operator=(HeteroGraph&& other) noexcept;

  /// Process-unique identity of this graph instance (never 0, never reused).
  uint64_t uid() const { return uid_; }

  const GraphSchema& schema() const { return schema_; }

  int64_t num_nodes() const { return static_cast<int64_t>(node_types_.size()); }
  /// Undirected edge count (half-edge count / 2).
  int64_t num_edges() const { return csr_.num_half_edges() / 2; }

  NodeTypeId node_type(NodeId v) const {
    WIDEN_DCHECK(v >= 0 && v < num_nodes());
    return node_types_[static_cast<size_t>(v)];
  }
  const std::vector<NodeTypeId>& node_types() const { return node_types_; }

  /// All node ids of the given type, ascending.
  const std::vector<NodeId>& nodes_of_type(NodeTypeId type) const;

  int64_t degree(NodeId v) const { return csr_.degree(v); }
  Csr::NeighborSpan neighbors(NodeId v) const { return csr_.neighbors(v); }
  EdgeTypeId EdgeTypeBetween(NodeId u, NodeId v) const {
    return csr_.EdgeTypeBetween(u, v);
  }

  /// Raw node features, [num_nodes, feature_dim]; never differentiable.
  const tensor::Tensor& features() const { return features_; }
  int64_t feature_dim() const {
    return features_.defined() ? features_.cols() : 0;
  }

  bool has_labels() const { return num_classes_ > 0; }
  int32_t num_classes() const { return num_classes_; }
  /// Node type carrying labels (e.g. "paper" on ACM).
  NodeTypeId labeled_node_type() const { return labeled_node_type_; }
  /// Label of v, or -1.
  int32_t label(NodeId v) const {
    WIDEN_DCHECK(v >= 0 && v < num_nodes());
    return labels_.empty() ? -1 : labels_[static_cast<size_t>(v)];
  }
  const std::vector<int32_t>& labels() const { return labels_; }

  /// All nodes with a label, ascending.
  std::vector<NodeId> LabeledNodes() const;

  std::string DebugString() const;

 private:
  friend class GraphBuilder;
  friend class SubgraphExtractor;

  uint64_t uid_;
  GraphSchema schema_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::vector<NodeId>> nodes_by_type_;
  Csr csr_;
  tensor::Tensor features_;
  std::vector<int32_t> labels_;
  int32_t num_classes_ = 0;
  NodeTypeId labeled_node_type_ = -1;
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_HETERO_GRAPH_H_
