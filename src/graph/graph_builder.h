// Mutable builder for HeteroGraph with validation at Build() time.

#ifndef WIDEN_GRAPH_GRAPH_BUILDER_H_
#define WIDEN_GRAPH_GRAPH_BUILDER_H_

#include <tuple>
#include <vector>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace widen::graph {

/// Accumulates nodes, edges, features, and labels, then freezes them into an
/// immutable HeteroGraph. Recoverable misuse (bad ids, type-incompatible
/// edges, shape mismatches) surfaces as Status.
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphSchema schema) : schema_(std::move(schema)) {}

  /// Adds one node of `type`; returns its dense id.
  NodeId AddNode(NodeTypeId type);

  /// Adds `count` nodes of `type`; returns the first id.
  NodeId AddNodes(NodeTypeId type, int64_t count);

  /// Adds an undirected typed edge. Fails on unknown ids, self loops, or an
  /// edge type incompatible with the endpoints' node types.
  Status AddEdge(NodeId u, NodeId v, EdgeTypeId edge_type);

  /// Sets the dense feature matrix; rows must equal the node count at
  /// Build() time.
  void SetFeatures(tensor::Tensor features);

  /// Declares labels: `labels[v]` in [0, num_classes) or -1. Only nodes of
  /// `labeled_type` may be labeled.
  Status SetLabels(std::vector<int32_t> labels, int32_t num_classes,
                   NodeTypeId labeled_type);

  int64_t num_nodes() const { return static_cast<int64_t>(node_types_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Validates and freezes. The builder is left empty.
  StatusOr<HeteroGraph> Build();

 private:
  GraphSchema schema_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::tuple<NodeId, NodeId, EdgeTypeId>> edges_;
  tensor::Tensor features_;
  std::vector<int32_t> labels_;
  int32_t num_classes_ = 0;
  NodeTypeId labeled_node_type_ = -1;
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_GRAPH_BUILDER_H_
