// Dataset statistics (Table 1 of the paper) and degree summaries.

#ifndef WIDEN_GRAPH_GRAPH_STATS_H_
#define WIDEN_GRAPH_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"

namespace widen::graph {

/// Aggregate counts mirroring the rows of Table 1.
struct GraphStats {
  int64_t num_nodes = 0;
  int32_t num_node_types = 0;
  int64_t num_edges = 0;
  int32_t num_edge_types = 0;
  int64_t feature_dim = 0;
  int32_t num_classes = 0;
  int64_t num_labeled = 0;
  double mean_degree = 0.0;
  int64_t max_degree = 0;
  /// Node count per node type, indexed by NodeTypeId.
  std::vector<int64_t> nodes_per_type;
  /// Undirected edge count per edge type, indexed by EdgeTypeId.
  std::vector<int64_t> edges_per_type;
};

/// Computes all statistics in one pass over the CSR.
GraphStats ComputeStats(const HeteroGraph& graph);

/// Multi-line human-readable rendering, one "Property | Value" row per line.
std::string FormatStats(const HeteroGraph& graph, const GraphStats& stats);

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_GRAPH_STATS_H_
