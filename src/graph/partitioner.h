// Greedy balanced edge-cut partitioner.
//
// The paper uses Metis to split the Yelp graph into subgraphs so that
// full-graph baselines fit in memory (§4.4). This is the in-tree substitute:
// BFS-grown balanced parts that keep most edges internal. Quality is not
// Metis-grade, but the requirement — connected, roughly equal parts with a
// small cut — is mild, and the training loop only needs the partition labels.

#ifndef WIDEN_GRAPH_PARTITIONER_H_
#define WIDEN_GRAPH_PARTITIONER_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace widen::graph {

struct PartitionResult {
  /// part id per node, in [0, num_parts).
  std::vector<int32_t> assignment;
  /// Undirected edges whose endpoints landed in different parts.
  int64_t cut_edges = 0;
  /// Node count per part.
  std::vector<int64_t> part_sizes;
};

/// Splits `graph` into `num_parts` balanced parts by growing BFS regions from
/// spread-out seeds, then greedily refining boundary nodes (one
/// Kernighan-Lin-style sweep). Disconnected components are absorbed by the
/// smallest part; `num_parts` may exceed the node count, in which case the
/// surplus parts are empty. Fails only on num_parts <= 0.
StatusOr<PartitionResult> GreedyPartition(const HeteroGraph& graph,
                                          int32_t num_parts);

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_PARTITIONER_H_
