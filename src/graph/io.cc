#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace widen::graph {
namespace {

Status ParseError(int line, const std::string& message) {
  return Status::InvalidArgument(StrCat("line ", line, ": ", message));
}

}  // namespace

Status SaveGraphText(const HeteroGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  out << "widen-graph 1\n";
  const GraphSchema& schema = graph.schema();
  for (NodeTypeId t = 0; t < schema.num_node_types(); ++t) {
    out << "node_type " << schema.node_type_name(t) << "\n";
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeSpec& spec = schema.edge_type(e);
    out << "edge_type " << spec.name << " "
        << schema.node_type_name(spec.src_type) << " "
        << schema.node_type_name(spec.dst_type) << "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "node " << schema.node_type_name(graph.node_type(v)) << "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    Csr::NeighborSpan span = graph.neighbors(v);
    for (int64_t i = 0; i < span.size; ++i) {
      if (span.neighbors[i] == v) {
        // GraphBuilder::AddEdge refuses self-loops, so no loadable graph
        // contains one; refuse loudly instead of silently dropping the edge
        // (which would make save->load lossy without any signal).
        return Status::InvalidArgument(
            StrCat("node ", v, " has a self-loop; the text format (and "
                   "GraphBuilder) do not support self-loops"));
      }
      if (span.neighbors[i] > v) {  // each undirected edge once
        out << "edge " << v << " " << span.neighbors[i] << " "
            << schema.edge_type_name(span.edge_types[i]) << "\n";
      }
    }
  }
  if (graph.features().defined()) {
    // max_digits10 makes the decimal text round-trip to the exact same
    // float bits on load (9 significant digits for IEEE binary32).
    out.precision(std::numeric_limits<float>::max_digits10);
    const int64_t dim = graph.feature_dim();
    out << "features " << dim << "\n";
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const float* row = graph.features().data() + static_cast<int64_t>(v) * dim;
      bool all_zero = true;
      for (int64_t j = 0; j < dim; ++j) {
        if (row[j] != 0.0f) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) continue;
      out << "f " << v;
      for (int64_t j = 0; j < dim; ++j) out << " " << row[j];
      out << "\n";
    }
  }
  if (graph.has_labels()) {
    out << "labels " << graph.num_classes() << " "
        << schema.node_type_name(graph.labeled_node_type()) << "\n";
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (graph.label(v) >= 0) {
        out << "label " << v << " " << graph.label(v) << "\n";
      }
    }
  }
  out.flush();
  if (!out) return Status::IOError(StrCat("write to '", path, "' failed"));
  return Status::OK();
}

StatusOr<HeteroGraph> LoadGraphText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError(StrCat("cannot open '", path, "'"));

  // Two-pass-free design: collect declarations first into staging vectors,
  // then build (features need the final node count).
  GraphSchema schema;
  bool schema_frozen = false;  // set once the first node appears
  std::vector<NodeTypeId> node_types;
  struct PendingEdge {
    NodeId u;
    NodeId v;
    std::string type;
    int line;
  };
  std::vector<PendingEdge> edges;
  int64_t feature_dim = -1;
  std::vector<std::pair<NodeId, std::vector<float>>> feature_rows;
  std::unordered_set<NodeId> feature_nodes;
  int32_t num_classes = 0;
  std::string labeled_type_name;
  std::vector<std::pair<NodeId, int32_t>> labels;
  std::unordered_set<NodeId> labeled_nodes;

  std::string line;
  int line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;

    if (!saw_header) {
      int version = 0;
      if (keyword != "widen-graph" || !(tokens >> version) || version != 1) {
        return ParseError(line_number, "expected header 'widen-graph 1'");
      }
      saw_header = true;
      continue;
    }

    if (keyword == "node_type") {
      std::string name;
      if (!(tokens >> name)) return ParseError(line_number, "missing name");
      if (schema_frozen) {
        return ParseError(line_number, "node_type after first node");
      }
      if (schema.FindNodeType(name).ok()) {
        return ParseError(line_number, StrCat("duplicate node type '", name,
                                              "'"));
      }
      schema.AddNodeType(name);
    } else if (keyword == "edge_type") {
      std::string name, src, dst;
      if (!(tokens >> name >> src >> dst)) {
        return ParseError(line_number, "edge_type needs name src dst");
      }
      if (schema_frozen) {
        return ParseError(line_number, "edge_type after first node");
      }
      auto src_id = schema.FindNodeType(src);
      auto dst_id = schema.FindNodeType(dst);
      if (!src_id.ok() || !dst_id.ok()) {
        return ParseError(line_number, "unknown endpoint node type");
      }
      if (schema.FindEdgeType(name).ok()) {
        return ParseError(line_number, StrCat("duplicate edge type '", name,
                                              "'"));
      }
      schema.AddEdgeType(name, *src_id, *dst_id);
    } else if (keyword == "node") {
      std::string type_name;
      if (!(tokens >> type_name)) {
        return ParseError(line_number, "node needs a type name");
      }
      auto type = schema.FindNodeType(type_name);
      if (!type.ok()) {
        return ParseError(line_number,
                          StrCat("unknown node type '", type_name, "'"));
      }
      schema_frozen = true;
      node_types.push_back(*type);
    } else if (keyword == "edge") {
      PendingEdge edge;
      edge.line = line_number;
      if (!(tokens >> edge.u >> edge.v >> edge.type)) {
        return ParseError(line_number, "edge needs u v type");
      }
      edges.push_back(std::move(edge));
    } else if (keyword == "features") {
      if (!(tokens >> feature_dim) || feature_dim <= 0) {
        return ParseError(line_number, "features needs a positive dim");
      }
    } else if (keyword == "f") {
      if (feature_dim <= 0) {
        return ParseError(line_number, "'f' before 'features <dim>'");
      }
      NodeId v = -1;
      if (!(tokens >> v)) return ParseError(line_number, "f needs node id");
      if (!feature_nodes.insert(v).second) {
        return ParseError(line_number,
                          StrCat("duplicate feature row for node ", v));
      }
      std::vector<float> row(static_cast<size_t>(feature_dim));
      for (int64_t j = 0; j < feature_dim; ++j) {
        if (!(tokens >> row[static_cast<size_t>(j)])) {
          return ParseError(line_number,
                            StrCat("feature row needs ", feature_dim,
                                   " values"));
        }
      }
      feature_rows.emplace_back(v, std::move(row));
    } else if (keyword == "labels") {
      if (!(tokens >> num_classes >> labeled_type_name) || num_classes <= 0) {
        return ParseError(line_number, "labels needs num_classes type_name");
      }
    } else if (keyword == "label") {
      NodeId v = -1;
      int32_t y = -1;
      if (!(tokens >> v >> y)) {
        return ParseError(line_number, "label needs node id and class");
      }
      if (!labeled_nodes.insert(v).second) {
        return ParseError(line_number, StrCat("duplicate label for node ", v));
      }
      labels.emplace_back(v, y);
    } else {
      return ParseError(line_number, StrCat("unknown keyword '", keyword,
                                            "'"));
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty graph file");

  GraphBuilder builder(schema);
  for (NodeTypeId t : node_types) builder.AddNode(t);
  for (const PendingEdge& edge : edges) {
    auto type = schema.FindEdgeType(edge.type);
    if (!type.ok()) {
      return ParseError(edge.line, StrCat("unknown edge type '", edge.type,
                                          "'"));
    }
    Status added = builder.AddEdge(edge.u, edge.v, *type);
    if (!added.ok()) return ParseError(edge.line, added.message());
  }
  if (feature_dim > 0) {
    tensor::Tensor features(tensor::Shape::Matrix(
        static_cast<int64_t>(node_types.size()), feature_dim));
    for (const auto& [v, row] : feature_rows) {
      if (v < 0 || v >= static_cast<NodeId>(node_types.size())) {
        return Status::InvalidArgument(StrCat("feature row for bad node ", v));
      }
      std::copy(row.begin(), row.end(),
                features.mutable_data() + static_cast<int64_t>(v) * feature_dim);
    }
    builder.SetFeatures(std::move(features));
  }
  if (num_classes > 0) {
    auto labeled_type = schema.FindNodeType(labeled_type_name);
    if (!labeled_type.ok()) {
      return Status::InvalidArgument(
          StrCat("unknown labeled type '", labeled_type_name, "'"));
    }
    std::vector<int32_t> label_vector(node_types.size(), -1);
    for (const auto& [v, y] : labels) {
      if (v < 0 || v >= static_cast<NodeId>(node_types.size())) {
        return Status::InvalidArgument(StrCat("label for bad node ", v));
      }
      label_vector[static_cast<size_t>(v)] = y;
    }
    WIDEN_RETURN_IF_ERROR(
        builder.SetLabels(std::move(label_vector), num_classes,
                          *labeled_type));
  }
  return builder.Build();
}

}  // namespace widen::graph
