#include "graph/partitioner.h"

#include <algorithm>
#include <deque>

#include "util/string_util.h"

namespace widen::graph {
namespace {

// Counts undirected cut edges under `assignment`.
int64_t CountCut(const HeteroGraph& graph,
                 const std::vector<int32_t>& assignment) {
  int64_t cut = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    Csr::NeighborSpan span = graph.neighbors(v);
    for (int64_t i = 0; i < span.size; ++i) {
      const NodeId u = span.neighbors[i];
      if (u > v && assignment[static_cast<size_t>(u)] !=
                       assignment[static_cast<size_t>(v)]) {
        ++cut;
      }
    }
  }
  return cut;
}

}  // namespace

StatusOr<PartitionResult> GreedyPartition(const HeteroGraph& graph,
                                          int32_t num_parts) {
  if (num_parts <= 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  // num_parts > num_nodes is legal: the extra parts simply end up empty
  // (a sharded store may be opened with more shards than a tiny graph has
  // nodes). Capacity still balances the non-empty parts to within one node.
  const int64_t n = graph.num_nodes();

  PartitionResult result;
  result.assignment.assign(static_cast<size_t>(n), -1);
  result.part_sizes.assign(static_cast<size_t>(num_parts), 0);
  const int64_t capacity = (n + num_parts - 1) / num_parts;

  // Seeds: evenly spaced node ids (ids are grouped by construction order,
  // which spreads seeds across node types for the synthetic datasets).
  std::vector<std::deque<NodeId>> frontiers(static_cast<size_t>(num_parts));
  for (int32_t p = 0; p < num_parts; ++p) {
    NodeId seed = static_cast<NodeId>((n * p) / num_parts);
    // Skip already claimed seeds (possible when parts >> distinct positions).
    while (seed < n && result.assignment[static_cast<size_t>(seed)] != -1) {
      ++seed;
    }
    if (seed >= n) break;
    result.assignment[static_cast<size_t>(seed)] = p;
    ++result.part_sizes[static_cast<size_t>(p)];
    frontiers[static_cast<size_t>(p)].push_back(seed);
  }

  // Round-robin BFS growth under the capacity bound.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int32_t p = 0; p < num_parts; ++p) {
      auto& frontier = frontiers[static_cast<size_t>(p)];
      if (result.part_sizes[static_cast<size_t>(p)] >= capacity) continue;
      while (!frontier.empty() &&
             result.part_sizes[static_cast<size_t>(p)] < capacity) {
        const NodeId v = frontier.front();
        frontier.pop_front();
        Csr::NeighborSpan span = graph.neighbors(v);
        bool claimed = false;
        for (int64_t i = 0; i < span.size; ++i) {
          const NodeId u = span.neighbors[i];
          if (result.assignment[static_cast<size_t>(u)] == -1) {
            result.assignment[static_cast<size_t>(u)] = p;
            ++result.part_sizes[static_cast<size_t>(p)];
            frontier.push_back(u);
            claimed = true;
            progress = true;
            if (result.part_sizes[static_cast<size_t>(p)] >= capacity) break;
          }
        }
        if (claimed) break;  // yield to the next part for balance
      }
    }
  }

  // Orphans (disconnected or capacity-starved): assign to the smallest part.
  for (NodeId v = 0; v < n; ++v) {
    if (result.assignment[static_cast<size_t>(v)] != -1) continue;
    int32_t best = 0;
    for (int32_t p = 1; p < num_parts; ++p) {
      if (result.part_sizes[static_cast<size_t>(p)] <
          result.part_sizes[static_cast<size_t>(best)]) {
        best = p;
      }
    }
    result.assignment[static_cast<size_t>(v)] = best;
    ++result.part_sizes[static_cast<size_t>(best)];
  }

  // One refinement sweep: move boundary nodes to their majority-neighbor part
  // when it reduces the cut and keeps balance within +1 of capacity.
  std::vector<int64_t> gain(static_cast<size_t>(num_parts));
  for (NodeId v = 0; v < n; ++v) {
    const int32_t current = result.assignment[static_cast<size_t>(v)];
    std::fill(gain.begin(), gain.end(), 0);
    Csr::NeighborSpan span = graph.neighbors(v);
    for (int64_t i = 0; i < span.size; ++i) {
      ++gain[static_cast<size_t>(
          result.assignment[static_cast<size_t>(span.neighbors[i])])];
    }
    int32_t best = current;
    for (int32_t p = 0; p < num_parts; ++p) {
      if (p == current) continue;
      if (gain[static_cast<size_t>(p)] > gain[static_cast<size_t>(best)] &&
          result.part_sizes[static_cast<size_t>(p)] < capacity + 1) {
        best = p;
      }
    }
    if (best != current &&
        result.part_sizes[static_cast<size_t>(current)] > 1) {
      result.assignment[static_cast<size_t>(v)] = best;
      --result.part_sizes[static_cast<size_t>(current)];
      ++result.part_sizes[static_cast<size_t>(best)];
    }
  }

  result.cut_edges = CountCut(graph, result.assignment);
  return result;
}

}  // namespace widen::graph
