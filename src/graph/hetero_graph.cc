#include "graph/hetero_graph.h"

#include <atomic>
#include <sstream>

namespace widen::graph {
namespace {

uint64_t NextGraphUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

HeteroGraph::HeteroGraph() : uid_(NextGraphUid()) {}

HeteroGraph::HeteroGraph(const HeteroGraph& other)
    : uid_(NextGraphUid()),
      schema_(other.schema_),
      node_types_(other.node_types_),
      nodes_by_type_(other.nodes_by_type_),
      csr_(other.csr_),
      features_(other.features_),
      labels_(other.labels_),
      num_classes_(other.num_classes_),
      labeled_node_type_(other.labeled_node_type_) {}

HeteroGraph& HeteroGraph::operator=(const HeteroGraph& other) {
  if (this == &other) return *this;
  // Assignment replaces this instance's contents with a new graph; the
  // identity changes so uid-keyed caches built against the old contents
  // cannot be served for the new ones.
  uid_ = NextGraphUid();
  schema_ = other.schema_;
  node_types_ = other.node_types_;
  nodes_by_type_ = other.nodes_by_type_;
  csr_ = other.csr_;
  features_ = other.features_;
  labels_ = other.labels_;
  num_classes_ = other.num_classes_;
  labeled_node_type_ = other.labeled_node_type_;
  return *this;
}

HeteroGraph::HeteroGraph(HeteroGraph&& other) noexcept
    : uid_(other.uid_),
      schema_(std::move(other.schema_)),
      node_types_(std::move(other.node_types_)),
      nodes_by_type_(std::move(other.nodes_by_type_)),
      csr_(std::move(other.csr_)),
      features_(std::move(other.features_)),
      labels_(std::move(other.labels_)),
      num_classes_(other.num_classes_),
      labeled_node_type_(other.labeled_node_type_) {
  other.uid_ = NextGraphUid();
}

HeteroGraph& HeteroGraph::operator=(HeteroGraph&& other) noexcept {
  if (this == &other) return *this;
  uid_ = other.uid_;
  schema_ = std::move(other.schema_);
  node_types_ = std::move(other.node_types_);
  nodes_by_type_ = std::move(other.nodes_by_type_);
  csr_ = std::move(other.csr_);
  features_ = std::move(other.features_);
  labels_ = std::move(other.labels_);
  num_classes_ = other.num_classes_;
  labeled_node_type_ = other.labeled_node_type_;
  other.uid_ = NextGraphUid();
  return *this;
}

const std::vector<NodeId>& HeteroGraph::nodes_of_type(NodeTypeId type) const {
  WIDEN_CHECK(type >= 0 && type < schema_.num_node_types());
  return nodes_by_type_[static_cast<size_t>(type)];
}

std::vector<NodeId> HeteroGraph::LabeledNodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (label(v) >= 0) out.push_back(v);
  }
  return out;
}

std::string HeteroGraph::DebugString() const {
  std::ostringstream out;
  out << "HeteroGraph{nodes=" << num_nodes() << ", edges=" << num_edges()
      << ", node_types=" << schema_.num_node_types()
      << ", edge_types=" << schema_.num_edge_types()
      << ", feature_dim=" << feature_dim() << ", classes=" << num_classes_
      << "}";
  return out.str();
}

}  // namespace widen::graph
