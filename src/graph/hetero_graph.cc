#include "graph/hetero_graph.h"

#include <sstream>

namespace widen::graph {

const std::vector<NodeId>& HeteroGraph::nodes_of_type(NodeTypeId type) const {
  WIDEN_CHECK(type >= 0 && type < schema_.num_node_types());
  return nodes_by_type_[static_cast<size_t>(type)];
}

std::vector<NodeId> HeteroGraph::LabeledNodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (label(v) >= 0) out.push_back(v);
  }
  return out;
}

std::string HeteroGraph::DebugString() const {
  std::ostringstream out;
  out << "HeteroGraph{nodes=" << num_nodes() << ", edges=" << num_edges()
      << ", node_types=" << schema_.num_node_types()
      << ", edge_types=" << schema_.num_edge_types()
      << ", feature_dim=" << feature_dim() << ", classes=" << num_classes_
      << "}";
  return out.str();
}

}  // namespace widen::graph
