#include "graph/csr.h"

#include <algorithm>
#include <tuple>

namespace widen::graph {

Csr Csr::FromHalfEdges(
    int64_t num_nodes,
    const std::vector<std::tuple<NodeId, NodeId, EdgeTypeId>>& half_edges) {
  WIDEN_CHECK_GE(num_nodes, 0);
  Csr csr;
  csr.offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (const auto& [src, dst, etype] : half_edges) {
    WIDEN_CHECK(src >= 0 && src < num_nodes) << "bad src " << src;
    WIDEN_CHECK(dst >= 0 && dst < num_nodes) << "bad dst " << dst;
    ++csr.offsets_[static_cast<size_t>(src) + 1];
  }
  for (size_t i = 1; i < csr.offsets_.size(); ++i) {
    csr.offsets_[i] += csr.offsets_[i - 1];
  }
  csr.neighbors_.resize(half_edges.size());
  csr.edge_types_.resize(half_edges.size());
  std::vector<int64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const auto& [src, dst, etype] : half_edges) {
    const int64_t pos = cursor[static_cast<size_t>(src)]++;
    csr.neighbors_[static_cast<size_t>(pos)] = dst;
    csr.edge_types_[static_cast<size_t>(pos)] = etype;
  }
  // Sort each adjacency list by (neighbor, type) for determinism.
  for (int64_t v = 0; v < num_nodes; ++v) {
    const int64_t begin = csr.offsets_[static_cast<size_t>(v)];
    const int64_t end = csr.offsets_[static_cast<size_t>(v) + 1];
    std::vector<std::pair<NodeId, EdgeTypeId>> entries;
    entries.reserve(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      entries.emplace_back(csr.neighbors_[static_cast<size_t>(i)],
                           csr.edge_types_[static_cast<size_t>(i)]);
    }
    std::sort(entries.begin(), entries.end());
    for (int64_t i = begin; i < end; ++i) {
      csr.neighbors_[static_cast<size_t>(i)] =
          entries[static_cast<size_t>(i - begin)].first;
      csr.edge_types_[static_cast<size_t>(i)] =
          entries[static_cast<size_t>(i - begin)].second;
    }
  }
  return csr;
}

EdgeTypeId Csr::EdgeTypeBetween(NodeId u, NodeId v) const {
  NeighborSpan span = neighbors(u);
  // Neighbor lists are sorted by neighbor id: binary search the lower bound.
  const NodeId* begin = span.neighbors;
  const NodeId* end = span.neighbors + span.size;
  const NodeId* it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) return -1;
  return span.edge_types[it - begin];
}

}  // namespace widen::graph
