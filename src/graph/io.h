// Text serialization of heterogeneous graphs, so users can bring their own
// data without writing builder code. Line-oriented, '#'-comments allowed:
//
//   widen-graph 1
//   node_type <name>                      # one per node type, in id order
//   edge_type <name> <src_type> <dst_type>
//   node <type_name>                      # ids assigned in file order
//   edge <u> <v> <edge_type_name>
//   features <dim>
//   f <node_id> <v0> <v1> ... <v_dim-1>   # omitted rows are zero
//   labels <num_classes> <labeled_type_name>
//   label <node_id> <class>
//
// Sections may interleave as long as referenced names/ids exist.

#ifndef WIDEN_GRAPH_IO_H_
#define WIDEN_GRAPH_IO_H_

#include <string>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace widen::graph {

/// Writes `graph` in the format above (features and labels included when
/// present). Feature values are printed with enough digits to round-trip
/// bitwise through LoadGraphText. Self-loops are rejected (InvalidArgument)
/// rather than silently dropped; GraphBuilder cannot produce them anyway.
Status SaveGraphText(const HeteroGraph& graph, const std::string& path);

/// Parses a file written by SaveGraphText (or by hand). All structural
/// errors are reported with line numbers; duplicate `f` or `label` lines for
/// the same node are errors (a silent last-writer-wins would hide data bugs).
StatusOr<HeteroGraph> LoadGraphText(const std::string& path);

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_IO_H_
