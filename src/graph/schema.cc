#include "graph/schema.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace widen::graph {

NodeTypeId GraphSchema::AddNodeType(std::string name) {
  WIDEN_CHECK(!name.empty());
  for (const std::string& existing : node_type_names_) {
    WIDEN_CHECK(existing != name) << "duplicate node type: " << name;
  }
  node_type_names_.push_back(std::move(name));
  return static_cast<NodeTypeId>(node_type_names_.size() - 1);
}

EdgeTypeId GraphSchema::AddEdgeType(std::string name, NodeTypeId src_type,
                                    NodeTypeId dst_type) {
  WIDEN_CHECK(!name.empty());
  WIDEN_CHECK(src_type >= 0 && src_type < num_node_types());
  WIDEN_CHECK(dst_type >= 0 && dst_type < num_node_types());
  for (const EdgeTypeSpec& existing : edge_types_) {
    WIDEN_CHECK(existing.name != name) << "duplicate edge type: " << name;
  }
  edge_types_.push_back(EdgeTypeSpec{std::move(name), src_type, dst_type});
  return static_cast<EdgeTypeId>(edge_types_.size() - 1);
}

const std::string& GraphSchema::node_type_name(NodeTypeId id) const {
  WIDEN_CHECK(id >= 0 && id < num_node_types());
  return node_type_names_[static_cast<size_t>(id)];
}

const std::string& GraphSchema::edge_type_name(EdgeTypeId id) const {
  return edge_type(id).name;
}

const EdgeTypeSpec& GraphSchema::edge_type(EdgeTypeId id) const {
  WIDEN_CHECK(id >= 0 && id < num_edge_types());
  return edge_types_[static_cast<size_t>(id)];
}

StatusOr<NodeTypeId> GraphSchema::FindNodeType(const std::string& name) const {
  for (size_t i = 0; i < node_type_names_.size(); ++i) {
    if (node_type_names_[i] == name) return static_cast<NodeTypeId>(i);
  }
  return Status::NotFound(StrCat("node type '", name, "'"));
}

StatusOr<EdgeTypeId> GraphSchema::FindEdgeType(const std::string& name) const {
  for (size_t i = 0; i < edge_types_.size(); ++i) {
    if (edge_types_[i].name == name) return static_cast<EdgeTypeId>(i);
  }
  return Status::NotFound(StrCat("edge type '", name, "'"));
}

bool GraphSchema::EdgeTypeCompatible(EdgeTypeId etype, NodeTypeId a,
                                     NodeTypeId b) const {
  const EdgeTypeSpec& spec = edge_type(etype);
  return (spec.src_type == a && spec.dst_type == b) ||
         (spec.src_type == b && spec.dst_type == a);
}

}  // namespace widen::graph
