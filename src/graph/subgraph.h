// Induced subgraph extraction, used for the inductive evaluation protocol
// (removing held-out nodes from the training graph, §4.3) and the
// scalability experiment's node-ratio subsampling (Fig. 5).

#ifndef WIDEN_GRAPH_SUBGRAPH_H_
#define WIDEN_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "util/status.h"

namespace widen::graph {

/// An induced subgraph together with the id correspondence to its parent.
struct Subgraph {
  HeteroGraph graph;
  /// new id -> old id, size graph.num_nodes().
  std::vector<NodeId> to_parent;
  /// old id -> new id, -1 for dropped nodes; size parent.num_nodes().
  std::vector<NodeId> from_parent;
};

/// Extracts the subgraph induced by `kept_nodes` (old ids, need not be
/// sorted; duplicates rejected). Features and labels are sliced along.
class SubgraphExtractor {
 public:
  static StatusOr<Subgraph> Induced(const HeteroGraph& parent,
                                    const std::vector<NodeId>& kept_nodes);
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_SUBGRAPH_H_
