// Graph schema: the vocabulary of node types and edge types of a
// heterogeneous graph (Definition 1 in the paper).

#ifndef WIDEN_GRAPH_SCHEMA_H_
#define WIDEN_GRAPH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace widen::graph {

using NodeTypeId = int32_t;
using EdgeTypeId = int32_t;

/// Declares one edge type together with the node types it may connect.
/// Edges are stored undirected; (src, dst) records the canonical orientation
/// used at AddEdge time, and the reverse direction is implied.
struct EdgeTypeSpec {
  std::string name;
  NodeTypeId src_type = -1;
  NodeTypeId dst_type = -1;
};

/// Immutable-after-setup registry of node and edge types.
///
/// Typical use: a dataset constructs one GraphSchema, registers types, then
/// hands it (by value) to a GraphBuilder. Lookup by name is linear — schemas
/// have a handful of types.
class GraphSchema {
 public:
  /// Registers a node type; returns its dense id.
  NodeTypeId AddNodeType(std::string name);

  /// Registers an edge type between two previously registered node types;
  /// returns its dense id.
  EdgeTypeId AddEdgeType(std::string name, NodeTypeId src_type,
                         NodeTypeId dst_type);

  int32_t num_node_types() const {
    return static_cast<int32_t>(node_type_names_.size());
  }
  int32_t num_edge_types() const {
    return static_cast<int32_t>(edge_types_.size());
  }

  const std::string& node_type_name(NodeTypeId id) const;
  const std::string& edge_type_name(EdgeTypeId id) const;
  const EdgeTypeSpec& edge_type(EdgeTypeId id) const;

  /// Id lookup by name; NotFound if absent.
  StatusOr<NodeTypeId> FindNodeType(const std::string& name) const;
  StatusOr<EdgeTypeId> FindEdgeType(const std::string& name) const;

  /// True if an edge of type `etype` may connect nodes of the given types
  /// in either orientation.
  bool EdgeTypeCompatible(EdgeTypeId etype, NodeTypeId a, NodeTypeId b) const;

 private:
  std::vector<std::string> node_type_names_;
  std::vector<EdgeTypeSpec> edge_types_;
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_SCHEMA_H_
