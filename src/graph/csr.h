// Compressed sparse row adjacency with per-edge type ids.

#ifndef WIDEN_GRAPH_CSR_H_
#define WIDEN_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/schema.h"
#include "util/logging.h"

namespace widen::graph {

using NodeId = int32_t;

/// One directed half-edge as seen from a node's adjacency list.
struct HalfEdge {
  NodeId neighbor;
  EdgeTypeId edge_type;
};

/// Immutable CSR adjacency. Undirected graphs store each edge in both
/// endpoint lists. Neighbor lists are sorted by (neighbor, edge_type) so
/// lookups and set operations are deterministic.
class Csr {
 public:
  Csr() = default;

  /// Builds from a directed half-edge list: edges[i] = (src, dst, type).
  /// Callers wanting undirected semantics pass both orientations.
  static Csr FromHalfEdges(
      int64_t num_nodes,
      const std::vector<std::tuple<NodeId, NodeId, EdgeTypeId>>& half_edges);

  int64_t num_nodes() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  int64_t num_half_edges() const {
    return static_cast<int64_t>(neighbors_.size());
  }

  int64_t degree(NodeId v) const {
    WIDEN_DCHECK(v >= 0 && v < num_nodes());
    return offsets_[static_cast<size_t>(v) + 1] -
           offsets_[static_cast<size_t>(v)];
  }

  /// Contiguous neighbor slice of v. Pointers are valid while the Csr lives.
  struct NeighborSpan {
    const NodeId* neighbors;
    const EdgeTypeId* edge_types;
    int64_t size;
  };
  NeighborSpan neighbors(NodeId v) const {
    WIDEN_DCHECK(v >= 0 && v < num_nodes());
    const int64_t begin = offsets_[static_cast<size_t>(v)];
    return NeighborSpan{neighbors_.data() + begin, edge_types_.data() + begin,
                        degree(v)};
  }

  /// Edge type between u and v, or -1 if not adjacent. If parallel edges of
  /// different types exist, returns the smallest type id.
  EdgeTypeId EdgeTypeBetween(NodeId u, NodeId v) const;

 private:
  std::vector<int64_t> offsets_;   // size num_nodes + 1
  std::vector<NodeId> neighbors_;  // size num_half_edges
  std::vector<EdgeTypeId> edge_types_;
};

}  // namespace widen::graph

#endif  // WIDEN_GRAPH_CSR_H_
