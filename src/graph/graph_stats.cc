#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace widen::graph {

GraphStats ComputeStats(const HeteroGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_node_types = graph.schema().num_node_types();
  s.num_edges = graph.num_edges();
  s.num_edge_types = graph.schema().num_edge_types();
  s.feature_dim = graph.feature_dim();
  s.num_classes = graph.num_classes();
  s.nodes_per_type.assign(static_cast<size_t>(s.num_node_types), 0);
  s.edges_per_type.assign(static_cast<size_t>(s.num_edge_types), 0);
  int64_t degree_sum = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ++s.nodes_per_type[static_cast<size_t>(graph.node_type(v))];
    const int64_t deg = graph.degree(v);
    degree_sum += deg;
    s.max_degree = std::max(s.max_degree, deg);
    if (graph.label(v) >= 0) ++s.num_labeled;
    Csr::NeighborSpan span = graph.neighbors(v);
    for (int64_t i = 0; i < span.size; ++i) {
      // Count each undirected edge once (from its lower endpoint).
      if (span.neighbors[i] > v) {
        ++s.edges_per_type[static_cast<size_t>(span.edge_types[i])];
      }
    }
  }
  s.mean_degree = s.num_nodes > 0
                      ? static_cast<double>(degree_sum) /
                            static_cast<double>(s.num_nodes)
                      : 0.0;
  return s;
}

std::string FormatStats(const HeteroGraph& graph, const GraphStats& stats) {
  std::ostringstream out;
  auto row = [&out](const std::string& k, const std::string& v) {
    out << "  " << PadRight(k, 18) << v << "\n";
  };
  row("#Nodes", WithThousandsSeparators(stats.num_nodes));
  row("#Node Types", std::to_string(stats.num_node_types));
  row("#Edges", WithThousandsSeparators(stats.num_edges));
  row("#Edge Types", std::to_string(stats.num_edge_types));
  row("#Features", std::to_string(stats.feature_dim));
  row("#Class Labels", std::to_string(stats.num_classes));
  row("#Labeled Nodes", WithThousandsSeparators(stats.num_labeled));
  row("Mean Degree", FormatDouble(stats.mean_degree, 2));
  row("Max Degree", std::to_string(stats.max_degree));
  for (size_t t = 0; t < stats.nodes_per_type.size(); ++t) {
    row(StrCat("  #", graph.schema().node_type_name(static_cast<NodeTypeId>(t))),
        WithThousandsSeparators(stats.nodes_per_type[t]));
  }
  for (size_t t = 0; t < stats.edges_per_type.size(); ++t) {
    row(StrCat("  #", graph.schema().edge_type_name(static_cast<EdgeTypeId>(t))),
        WithThousandsSeparators(stats.edges_per_type[t]));
  }
  return out.str();
}

}  // namespace widen::graph
