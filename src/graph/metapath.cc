#include "graph/metapath.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace widen::graph {

StatusOr<MetaPathAdjacency> ComposeMetaPath(const HeteroGraph& graph,
                                            const MetaPath& path,
                                            int64_t max_neighbors) {
  if (path.edge_types.empty()) {
    return Status::InvalidArgument("meta path has no edge types");
  }
  for (EdgeTypeId t : path.edge_types) {
    if (t < 0 || t >= graph.schema().num_edge_types()) {
      return Status::InvalidArgument(StrCat("unknown edge type ", t,
                                            " in meta path ", path.name));
    }
  }

  MetaPathAdjacency result;
  result.path = path;
  result.neighbors.assign(static_cast<size_t>(graph.num_nodes()), {});

  // Frontier expansion per source node. Graphs here are small enough that a
  // per-node multiset walk is simpler and fast enough; visit counts give the
  // frequency used for capping.
  std::unordered_map<NodeId, int64_t> frontier;
  std::unordered_map<NodeId, int64_t> next;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    frontier.clear();
    frontier[v] = 1;
    for (EdgeTypeId step : path.edge_types) {
      next.clear();
      for (const auto& [node, count] : frontier) {
        Csr::NeighborSpan span = graph.neighbors(node);
        for (int64_t i = 0; i < span.size; ++i) {
          if (span.edge_types[i] == step) next[span.neighbors[i]] += count;
        }
      }
      frontier.swap(next);
      if (frontier.empty()) break;
    }
    std::vector<std::pair<int64_t, NodeId>> ranked;  // (-count, id)
    ranked.reserve(frontier.size());
    for (const auto& [node, count] : frontier) {
      if (node != v) ranked.emplace_back(-count, node);
    }
    std::sort(ranked.begin(), ranked.end());
    int64_t keep = max_neighbors > 0
                       ? std::min<int64_t>(max_neighbors,
                                           static_cast<int64_t>(ranked.size()))
                       : static_cast<int64_t>(ranked.size());
    std::vector<NodeId>& out = result.neighbors[static_cast<size_t>(v)];
    out.reserve(static_cast<size_t>(keep));
    for (int64_t i = 0; i < keep; ++i) out.push_back(ranked[i].second);
    std::sort(out.begin(), out.end());
  }
  return result;
}

std::vector<MetaPath> DefaultSymmetricMetaPaths(const GraphSchema& schema) {
  std::vector<MetaPath> paths;
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeSpec& spec = schema.edge_type(e);
    if (spec.src_type == spec.dst_type) continue;
    MetaPath path;
    path.name = StrCat(schema.node_type_name(spec.src_type), "-",
                       schema.node_type_name(spec.dst_type), "-",
                       schema.node_type_name(spec.src_type));
    path.edge_types = {e, e};
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace widen::graph
