#include "graph/graph_builder.h"

#include "util/string_util.h"

namespace widen::graph {

NodeId GraphBuilder::AddNode(NodeTypeId type) {
  WIDEN_CHECK(type >= 0 && type < schema_.num_node_types())
      << "unknown node type " << type;
  node_types_.push_back(type);
  return static_cast<NodeId>(node_types_.size() - 1);
}

NodeId GraphBuilder::AddNodes(NodeTypeId type, int64_t count) {
  WIDEN_CHECK_GT(count, 0);
  NodeId first = AddNode(type);
  for (int64_t i = 1; i < count; ++i) AddNode(type);
  return first;
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, EdgeTypeId edge_type) {
  if (u < 0 || u >= num_nodes() || v < 0 || v >= num_nodes()) {
    return Status::InvalidArgument(
        StrCat("edge endpoint out of range: (", u, ", ", v, ") with ",
               num_nodes(), " nodes"));
  }
  if (u == v) {
    return Status::InvalidArgument(StrCat("self loop on node ", u));
  }
  if (edge_type < 0 || edge_type >= schema_.num_edge_types()) {
    return Status::InvalidArgument(StrCat("unknown edge type ", edge_type));
  }
  const NodeTypeId tu = node_types_[static_cast<size_t>(u)];
  const NodeTypeId tv = node_types_[static_cast<size_t>(v)];
  if (!schema_.EdgeTypeCompatible(edge_type, tu, tv)) {
    return Status::InvalidArgument(
        StrCat("edge type '", schema_.edge_type_name(edge_type),
               "' cannot connect node types '", schema_.node_type_name(tu),
               "' and '", schema_.node_type_name(tv), "'"));
  }
  edges_.emplace_back(u, v, edge_type);
  return Status::OK();
}

void GraphBuilder::SetFeatures(tensor::Tensor features) {
  features_ = std::move(features);
}

Status GraphBuilder::SetLabels(std::vector<int32_t> labels,
                               int32_t num_classes, NodeTypeId labeled_type) {
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (labeled_type < 0 || labeled_type >= schema_.num_node_types()) {
    return Status::InvalidArgument(StrCat("unknown node type ", labeled_type));
  }
  if (static_cast<int64_t>(labels.size()) != num_nodes()) {
    return Status::InvalidArgument(
        StrCat("labels size ", labels.size(), " != node count ", num_nodes()));
  }
  for (size_t v = 0; v < labels.size(); ++v) {
    const int32_t y = labels[v];
    if (y < -1 || y >= num_classes) {
      return Status::InvalidArgument(
          StrCat("label ", y, " on node ", v, " out of range"));
    }
    if (y >= 0 && node_types_[v] != labeled_type) {
      return Status::InvalidArgument(
          StrCat("labeled node ", v, " has type ", node_types_[v],
                 " but labeled type is ", labeled_type));
    }
  }
  labels_ = std::move(labels);
  num_classes_ = num_classes;
  labeled_node_type_ = labeled_type;
  return Status::OK();
}

StatusOr<HeteroGraph> GraphBuilder::Build() {
  if (features_.defined()) {
    if (features_.shape().rank() != 2 || features_.rows() != num_nodes()) {
      return Status::InvalidArgument(
          StrCat("features shape ", features_.shape().ToString(),
                 " incompatible with ", num_nodes(), " nodes"));
    }
    if (features_.requires_grad()) {
      return Status::InvalidArgument("node features must not require grad");
    }
  }

  HeteroGraph g;
  g.schema_ = schema_;
  g.node_types_ = std::move(node_types_);
  g.nodes_by_type_.assign(static_cast<size_t>(schema_.num_node_types()), {});
  for (NodeId v = 0; v < static_cast<NodeId>(g.node_types_.size()); ++v) {
    g.nodes_by_type_[static_cast<size_t>(g.node_types_[static_cast<size_t>(v)])]
        .push_back(v);
  }
  std::vector<std::tuple<NodeId, NodeId, EdgeTypeId>> half_edges;
  half_edges.reserve(edges_.size() * 2);
  for (const auto& [u, v, t] : edges_) {
    half_edges.emplace_back(u, v, t);
    half_edges.emplace_back(v, u, t);
  }
  g.csr_ = Csr::FromHalfEdges(static_cast<int64_t>(g.node_types_.size()),
                              half_edges);
  g.features_ = std::move(features_);
  g.labels_ = std::move(labels_);
  g.num_classes_ = num_classes_;
  g.labeled_node_type_ = labeled_node_type_;

  // Reset builder state.
  node_types_.clear();
  edges_.clear();
  features_ = tensor::Tensor();
  labels_.clear();
  num_classes_ = 0;
  labeled_node_type_ = -1;
  return g;
}

}  // namespace widen::graph
