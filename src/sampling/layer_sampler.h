// FastGCN-style layer-wise importance sampling (Chen, Ma & Xiao, 2018).
//
// Instead of expanding neighborhoods per node, FastGCN samples a fixed-size
// node set per layer with probability q(u) proportional to the squared norm
// of A's column — which for a binary adjacency reduces to the degree — and
// corrects the aggregation with 1/(t * q(u)) importance weights.

#ifndef WIDEN_SAMPLING_LAYER_SAMPLER_H_
#define WIDEN_SAMPLING_LAYER_SAMPLER_H_

#include <vector>

#include "graph/graph_view.h"
#include "graph/hetero_graph.h"
#include "util/random.h"

namespace widen::sampling {

/// One sampled layer: distinct node ids plus their importance weights
/// 1 / (t * q(u)).
struct LayerSample {
  std::vector<graph::NodeId> nodes;
  std::vector<float> weights;
};

/// Degree-proportional sampler with precomputed distribution.
class LayerSampler {
 public:
  explicit LayerSampler(const graph::HeteroGraph& graph);

  /// Same distribution built through the GraphView interface, so the sampler
  /// works over any backing (delta overlays, mmap'd shard stores). Degrees
  /// are read once at construction; the view may be destroyed afterwards.
  explicit LayerSampler(const graph::GraphView& graph);

  /// Samples `t` nodes (with replacement, then deduplicated — weights are
  /// aggregated on duplicates, keeping the estimator unbiased).
  LayerSample Sample(int64_t t, Rng& rng) const;

  /// q(u) for tests.
  double probability(graph::NodeId v) const {
    return probabilities_[static_cast<size_t>(v)];
  }

 private:
  std::vector<double> probabilities_;  // q(u), sums to 1
  std::vector<double> cumulative_;     // prefix sums for O(log n) draws
};

}  // namespace widen::sampling

#endif  // WIDEN_SAMPLING_LAYER_SAMPLER_H_
