#include "sampling/negative_sampler.h"

#include <cmath>
#include <deque>

#include "util/logging.h"

namespace widen::sampling {

NegativeSampler::NegativeSampler(const graph::HeteroGraph& graph) {
  const int64_t n = graph.num_nodes();
  WIDEN_CHECK_GT(n, 0);
  std::vector<double> weights(static_cast<size_t>(n));
  double total = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w =
        std::pow(static_cast<double>(graph.degree(v)) + 1e-3, 0.75);
    weights[static_cast<size_t>(v)] = w;
    total += w;
  }
  // Vose's alias method.
  accept_.assign(static_cast<size_t>(n), 1.0);
  alias_.assign(static_cast<size_t>(n), 0);
  std::deque<graph::NodeId> small, large;
  std::vector<double> scaled(static_cast<size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    scaled[static_cast<size_t>(v)] =
        weights[static_cast<size_t>(v)] * static_cast<double>(n) / total;
    (scaled[static_cast<size_t>(v)] < 1.0 ? small : large).push_back(v);
  }
  while (!small.empty() && !large.empty()) {
    const graph::NodeId s = small.front();
    small.pop_front();
    const graph::NodeId l = large.front();
    large.pop_front();
    accept_[static_cast<size_t>(s)] = scaled[static_cast<size_t>(s)];
    alias_[static_cast<size_t>(s)] = l;
    scaled[static_cast<size_t>(l)] =
        scaled[static_cast<size_t>(l)] + scaled[static_cast<size_t>(s)] - 1.0;
    (scaled[static_cast<size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets keep accept probability 1.
}

graph::NodeId NegativeSampler::Sample(Rng& rng) const {
  const size_t bucket =
      static_cast<size_t>(rng.UniformInt(accept_.size()));
  if (rng.UniformDouble() < accept_[bucket]) {
    return static_cast<graph::NodeId>(bucket);
  }
  return alias_[bucket];
}

std::vector<graph::NodeId> NegativeSampler::SampleExcluding(
    graph::NodeId forbidden, int64_t count, Rng& rng) const {
  std::vector<graph::NodeId> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    graph::NodeId candidate = Sample(rng);
    for (int retry = 0; retry < 8 && candidate == forbidden; ++retry) {
      candidate = Sample(rng);
    }
    out.push_back(candidate);
  }
  return out;
}

}  // namespace widen::sampling
