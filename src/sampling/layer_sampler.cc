#include "sampling/layer_sampler.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace widen::sampling {

LayerSampler::LayerSampler(const graph::HeteroGraph& graph)
    : LayerSampler(graph::HeteroGraphView(graph)) {}

LayerSampler::LayerSampler(const graph::GraphView& graph) {
  const int64_t n = graph.num_nodes();
  WIDEN_CHECK_GT(n, 0);
  probabilities_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    // ||A(:, v)||^2 for the unweighted adjacency = degree; +1 smooths
    // isolated nodes.
    const double q = static_cast<double>(graph.degree(v)) + 1.0;
    probabilities_[static_cast<size_t>(v)] = q;
    total += q;
  }
  cumulative_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (size_t i = 0; i < probabilities_.size(); ++i) {
    probabilities_[i] /= total;
    acc += probabilities_[i];
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;
}

LayerSample LayerSampler::Sample(int64_t t, Rng& rng) const {
  WIDEN_CHECK_GT(t, 0);
  std::unordered_map<graph::NodeId, float> weight_by_node;
  for (int64_t i = 0; i < t; ++i) {
    const double u = rng.UniformDouble();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    const graph::NodeId v = static_cast<graph::NodeId>(
        std::distance(cumulative_.begin(), it));
    weight_by_node[v] += static_cast<float>(
        1.0 / (static_cast<double>(t) * probabilities_[static_cast<size_t>(v)]));
  }
  LayerSample sample;
  sample.nodes.reserve(weight_by_node.size());
  sample.weights.reserve(weight_by_node.size());
  for (const auto& [node, weight] : weight_by_node) {
    sample.nodes.push_back(node);
    sample.weights.push_back(weight);
  }
  return sample;
}

}  // namespace widen::sampling
