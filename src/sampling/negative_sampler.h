// Unigram^0.75 negative sampling (word2vec/Node2Vec style).

#ifndef WIDEN_SAMPLING_NEGATIVE_SAMPLER_H_
#define WIDEN_SAMPLING_NEGATIVE_SAMPLER_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "util/random.h"

namespace widen::sampling {

/// Draws "noise" nodes with probability proportional to degree^0.75 via the
/// alias method, so each draw is O(1).
class NegativeSampler {
 public:
  /// Builds the alias table from the degree distribution of `graph`.
  /// Zero-degree nodes get weight epsilon so every node remains sampleable.
  explicit NegativeSampler(const graph::HeteroGraph& graph);

  /// One negative sample.
  graph::NodeId Sample(Rng& rng) const;

  /// `count` negatives, excluding `forbidden` (resampled on collision, with
  /// a bounded number of retries before accepting the collision).
  std::vector<graph::NodeId> SampleExcluding(graph::NodeId forbidden,
                                             int64_t count, Rng& rng) const;

 private:
  std::vector<double> accept_;        // alias-method acceptance probability
  std::vector<graph::NodeId> alias_;  // alias-method fallback bucket
};

}  // namespace widen::sampling

#endif  // WIDEN_SAMPLING_NEGATIVE_SAMPLER_H_
