// Deep neighbor sampling (Definition 3): random-walk sequences that carry the
// edge type taken at every step, plus the biased second-order walk used by
// Node2Vec.

#ifndef WIDEN_SAMPLING_RANDOM_WALK_H_
#define WIDEN_SAMPLING_RANDOM_WALK_H_

#include <vector>

#include "graph/graph_view.h"
#include "graph/hetero_graph.h"
#include "util/random.h"

namespace widen::sampling {

/// A sampled deep neighbor sequence D(v_t). `nodes[s]` is the node at walk
/// position s (0-based; the target itself is NOT stored, per Definition 3).
/// `edge_types[s]` is the type of the edge from the predecessor — so
/// edge_types[0] types the edge (v_t, nodes[0]), matching e_{1,0} = e_{1,t}.
/// The walk may be shorter than requested if it reaches a sink.
struct DeepNeighborSequence {
  graph::NodeId target = -1;
  std::vector<graph::NodeId> nodes;
  std::vector<graph::EdgeTypeId> edge_types;

  size_t size() const { return nodes.size(); }
};

/// Uniform random walk of (up to) `length` steps starting from `target`.
/// Revisits are allowed (standard DeepWalk behaviour); immediate backtracking
/// is permitted as well. Isolated targets yield an empty sequence.
DeepNeighborSequence SampleDeepWalk(const graph::GraphView& graph,
                                    graph::NodeId target, int64_t length,
                                    Rng& rng);
inline DeepNeighborSequence SampleDeepWalk(const graph::HeteroGraph& graph,
                                           graph::NodeId target,
                                           int64_t length, Rng& rng) {
  return SampleDeepWalk(graph::HeteroGraphView(graph), target, length, rng);
}

/// Node2Vec second-order biased walk: return parameter `p` and in-out
/// parameter `q` reweight the step distribution as in Grover & Leskovec
/// (2016). The returned sequence INCLUDES the start node at position 0
/// (skip-gram training consumes whole walks).
std::vector<graph::NodeId> SampleNode2VecWalk(const graph::HeteroGraph& graph,
                                              graph::NodeId start,
                                              int64_t length, double p,
                                              double q, Rng& rng);

}  // namespace widen::sampling

#endif  // WIDEN_SAMPLING_RANDOM_WALK_H_
