// Wide neighbor sampling (Definition 2 of the paper): for a target node,
// draw up to N_w uniformly random first-order neighbors together with the
// edge types connecting them to the target.

#ifndef WIDEN_SAMPLING_NEIGHBOR_SAMPLER_H_
#define WIDEN_SAMPLING_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "graph/graph_view.h"
#include "graph/hetero_graph.h"
#include "util/random.h"

namespace widen::sampling {

/// A sampled wide neighbor set W(v_t). Position in `nodes` is the paper's
/// local index n (0-based here); values are global node ids. `edge_types[n]`
/// is the type of the edge (v_t, nodes[n]).
struct WideNeighborSet {
  graph::NodeId target = -1;
  std::vector<graph::NodeId> nodes;
  std::vector<graph::EdgeTypeId> edge_types;

  size_t size() const { return nodes.size(); }

  /// Removes the neighbor at local index n, shifting later local indexes
  /// down by one — exactly the re-indexing loop of Algorithm 1 (lines 5-8).
  void RemoveLocalIndex(size_t n);
};

/// Uniformly samples min(N_w, degree) distinct neighbors of `target`.
/// Isolated targets yield an empty set. Deterministic given `rng` state, and
/// bitwise-identical across GraphView backings that present the same
/// neighbor ordering (graph/graph_view.h).
WideNeighborSet SampleWideNeighbors(const graph::GraphView& graph,
                                    graph::NodeId target, int64_t sample_size,
                                    Rng& rng);
inline WideNeighborSet SampleWideNeighbors(const graph::HeteroGraph& graph,
                                           graph::NodeId target,
                                           int64_t sample_size, Rng& rng) {
  return SampleWideNeighbors(graph::HeteroGraphView(graph), target,
                             sample_size, rng);
}

/// GraphSAGE-style sampling: exactly `sample_size` draws, with replacement
/// when the degree is smaller (unless the target is isolated).
WideNeighborSet SampleWideNeighborsWithReplacement(
    const graph::GraphView& graph, graph::NodeId target,
    int64_t sample_size, Rng& rng);
inline WideNeighborSet SampleWideNeighborsWithReplacement(
    const graph::HeteroGraph& graph, graph::NodeId target,
    int64_t sample_size, Rng& rng) {
  return SampleWideNeighborsWithReplacement(graph::HeteroGraphView(graph),
                                            target, sample_size, rng);
}

}  // namespace widen::sampling

#endif  // WIDEN_SAMPLING_NEIGHBOR_SAMPLER_H_
