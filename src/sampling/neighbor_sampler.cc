#include "sampling/neighbor_sampler.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace widen::sampling {
namespace {

// One aggregated Add per sampling call (not per neighbor) so the counters
// stay invisible next to the RNG + copy work they meter.
void CountWideSample(const WideNeighborSet& set) {
  WIDEN_METRIC_COUNTER(calls, "widen_sampling_wide_calls_total",
                       "Wide neighbor sampling invocations");
  WIDEN_METRIC_COUNTER(drawn, "widen_sampling_wide_neighbors_total",
                       "Neighbors drawn by wide sampling");
  calls->Increment();
  drawn->Add(static_cast<int64_t>(set.nodes.size()));
}

}  // namespace

void WideNeighborSet::RemoveLocalIndex(size_t n) {
  WIDEN_CHECK_LT(n, nodes.size());
  nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(n));
  edge_types.erase(edge_types.begin() + static_cast<std::ptrdiff_t>(n));
}

WideNeighborSet SampleWideNeighbors(const graph::GraphView& graph,
                                    graph::NodeId target, int64_t sample_size,
                                    Rng& rng) {
  WIDEN_CHECK_GE(sample_size, 0);
  WideNeighborSet set;
  set.target = target;
  graph::Csr::NeighborSpan span = graph.neighbors(target);
  if (span.size == 0 || sample_size == 0) {
    CountWideSample(set);
    return set;
  }
  if (span.size <= sample_size) {
    set.nodes.assign(span.neighbors, span.neighbors + span.size);
    set.edge_types.assign(span.edge_types, span.edge_types + span.size);
    // Shuffle jointly so local indexes are not biased by CSR order.
    for (size_t i = set.nodes.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(set.nodes[i - 1], set.nodes[j]);
      std::swap(set.edge_types[i - 1], set.edge_types[j]);
    }
    CountWideSample(set);
    return set;
  }
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(span.size), static_cast<size_t>(sample_size));
  set.nodes.reserve(picks.size());
  set.edge_types.reserve(picks.size());
  for (size_t p : picks) {
    set.nodes.push_back(span.neighbors[p]);
    set.edge_types.push_back(span.edge_types[p]);
  }
  CountWideSample(set);
  return set;
}

WideNeighborSet SampleWideNeighborsWithReplacement(
    const graph::GraphView& graph, graph::NodeId target,
    int64_t sample_size, Rng& rng) {
  WIDEN_CHECK_GE(sample_size, 0);
  WideNeighborSet set;
  set.target = target;
  graph::Csr::NeighborSpan span = graph.neighbors(target);
  if (span.size == 0 || sample_size == 0) {
    CountWideSample(set);
    return set;
  }
  set.nodes.reserve(static_cast<size_t>(sample_size));
  set.edge_types.reserve(static_cast<size_t>(sample_size));
  for (int64_t i = 0; i < sample_size; ++i) {
    const size_t p =
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(span.size)));
    set.nodes.push_back(span.neighbors[p]);
    set.edge_types.push_back(span.edge_types[p]);
  }
  CountWideSample(set);
  return set;
}

}  // namespace widen::sampling
