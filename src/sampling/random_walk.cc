#include "sampling/random_walk.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace widen::sampling {

DeepNeighborSequence SampleDeepWalk(const graph::GraphView& graph,
                                    graph::NodeId target, int64_t length,
                                    Rng& rng) {
  WIDEN_CHECK_GE(length, 0);
  WIDEN_METRIC_HISTOGRAM(walk_us, "widen_sampling_walk_us",
                         "Wall time per deep random walk (microseconds, "
                         "1-in-16 sampled)");
  WIDEN_METRIC_COUNTER(steps, "widen_sampling_walk_steps_total",
                       "Steps taken across all deep random walks");
  // A walk is a handful of neighbor lookups — cheaper than a clock read —
  // so only every 16th walk is timed; the steps counter stays exact.
  obs::SampledLatencyTimer<16> timer(walk_us);
  DeepNeighborSequence seq;
  seq.target = target;
  seq.nodes.reserve(static_cast<size_t>(length));
  seq.edge_types.reserve(static_cast<size_t>(length));
  graph::NodeId current = target;
  for (int64_t s = 0; s < length; ++s) {
    graph::Csr::NeighborSpan span = graph.neighbors(current);
    if (span.size == 0) break;
    const size_t pick =
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(span.size)));
    current = span.neighbors[pick];
    seq.nodes.push_back(current);
    seq.edge_types.push_back(span.edge_types[pick]);
  }
  steps->Add(static_cast<int64_t>(seq.nodes.size()));
  return seq;
}

std::vector<graph::NodeId> SampleNode2VecWalk(const graph::HeteroGraph& graph,
                                              graph::NodeId start,
                                              int64_t length, double p,
                                              double q, Rng& rng) {
  WIDEN_CHECK_GT(p, 0.0);
  WIDEN_CHECK_GT(q, 0.0);
  std::vector<graph::NodeId> walk;
  walk.reserve(static_cast<size_t>(length) + 1);
  walk.push_back(start);
  if (length == 0) return walk;

  // First step: uniform.
  graph::Csr::NeighborSpan first = graph.neighbors(start);
  if (first.size == 0) return walk;
  walk.push_back(first.neighbors[static_cast<size_t>(
      rng.UniformInt(static_cast<uint64_t>(first.size)))]);

  std::vector<double> weights;
  while (static_cast<int64_t>(walk.size()) <= length) {
    const graph::NodeId prev = walk[walk.size() - 2];
    const graph::NodeId current = walk.back();
    graph::Csr::NeighborSpan span = graph.neighbors(current);
    if (span.size == 0) break;
    weights.assign(static_cast<size_t>(span.size), 0.0);
    graph::Csr::NeighborSpan prev_span = graph.neighbors(prev);
    for (int64_t i = 0; i < span.size; ++i) {
      const graph::NodeId next = span.neighbors[i];
      double w;
      if (next == prev) {
        w = 1.0 / p;  // return
      } else {
        // d(prev, next) == 1 iff next is adjacent to prev (sorted lists).
        const bool adjacent = std::binary_search(
            prev_span.neighbors, prev_span.neighbors + prev_span.size, next);
        w = adjacent ? 1.0 : 1.0 / q;
      }
      weights[static_cast<size_t>(i)] = w;
    }
    const size_t pick = rng.Categorical(weights);
    walk.push_back(span.neighbors[pick]);
  }
  return walk;
}

}  // namespace widen::sampling
