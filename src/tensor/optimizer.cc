#include "tensor/optimizer.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace widen::tensor {

void Optimizer::AddParameter(const Tensor& parameter) {
  WIDEN_CHECK(parameter.defined());
  WIDEN_CHECK(parameter.requires_grad())
      << "optimizer parameter must require grad: " << parameter.label();
  parameters_.push_back(parameter);
}

void Optimizer::AddParameters(const std::vector<Tensor>& parameters) {
  for (const Tensor& p : parameters) AddParameter(p);
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  WIDEN_CHECK_GT(max_norm, 0.0);
  double sum_sq = 0.0;
  for (Tensor& p : parameters_) {
    const float* g = p.mutable_grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      sum_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : parameters_) {
      float* g = p.mutable_grad();
      for (int64_t i = 0; i < p.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

int64_t Optimizer::TotalParameterCount() const {
  int64_t total = 0;
  for (const Tensor& p : parameters_) total += p.size();
  return total;
}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    float* x = p.mutable_data();
    const float* g = p.mutable_grad();
    for (int64_t i = 0; i < p.size(); ++i) {
      float update = g[i] + weight_decay_ * x[i];
      x[i] -= learning_rate_ * update;
    }
  }
}

void Adam::Step() {
  if (m_.size() != parameters_.size()) {
    m_.resize(parameters_.size());
    v_.resize(parameters_.size());
    for (size_t k = 0; k < parameters_.size(); ++k) {
      m_[k].assign(static_cast<size_t>(parameters_[k].size()), 0.0f);
      v_[k].assign(static_cast<size_t>(parameters_[k].size()), 0.0f);
    }
  }
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t k = 0; k < parameters_.size(); ++k) {
    Tensor& p = parameters_[k];
    float* x = p.mutable_data();
    const float* g = p.mutable_grad();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (int64_t i = 0; i < p.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      x[i] -= learning_rate_ *
              (m_hat / (std::sqrt(v_hat) + epsilon_) + weight_decay_ * x[i]);
    }
  }
}

Status Adam::RestoreState(int64_t step, std::vector<std::vector<float>> m,
                          std::vector<std::vector<float>> v) {
  if (step < 0) {
    return Status::InvalidArgument("Adam step count must be non-negative");
  }
  if (m.size() != v.size()) {
    return Status::InvalidArgument("Adam moment lists differ in length");
  }
  if (!m.empty()) {
    if (m.size() != parameters_.size()) {
      return Status::InvalidArgument(
          StrCat("Adam state has ", m.size(), " moment vectors, optimizer has ",
                 parameters_.size(), " parameters"));
    }
    for (size_t k = 0; k < parameters_.size(); ++k) {
      const size_t wanted = static_cast<size_t>(parameters_[k].size());
      if (m[k].size() != wanted || v[k].size() != wanted) {
        return Status::InvalidArgument(
            StrCat("Adam moment ", k, " size mismatch (",
                   parameters_[k].label(), ")"));
      }
    }
  }
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

}  // namespace widen::tensor
