#include "tensor/autograd.h"

#include <unordered_set>
#include <vector>

#include "obs/profiler.h"

namespace widen::tensor {
namespace {

using internal::TensorImpl;

// Iterative post-order DFS over parent edges; the returned list has every
// parent appearing before its children, so iterating it in reverse visits
// each node only after all its consumers.
std::vector<TensorImpl*> TopologicalOrder(TensorImpl* root) {
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      TensorImpl* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void Backward(const Tensor& root) {
  WIDEN_CHECK_EQ(root.size(), 1) << "Backward() root must be a scalar";
  obs::ScopedProfPhase phase_scope(obs::ProfPhase::kBackward);
  TensorImpl* root_impl = root.impl_ptr().get();
  root_impl->EnsureGrad();
  root_impl->grad[0] = 1.0f;
  std::vector<TensorImpl*> order = TopologicalOrder(root_impl);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
}

size_t CountTapeNodes(const Tensor& root) {
  return TopologicalOrder(root.impl_ptr().get()).size();
}

void Tensor::Backward() { tensor::Backward(*this); }

}  // namespace widen::tensor
