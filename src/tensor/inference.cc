#include "tensor/inference.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "obs/memprof.h"

namespace widen::tensor {
namespace {

// Bounds on the per-thread pool so a pathological shape mix cannot pin
// unbounded memory: pool at most this many buffers / this many bytes.
constexpr size_t kMaxPooledBuffers = 256;
constexpr size_t kMaxPooledBytes = size_t{32} << 20;  // 32 MiB per thread

struct BufferPool {
  std::vector<FloatBuffer> buffers;
  size_t pooled_bytes = 0;
  int scope_depth = 0;
  InferenceScope::Stats stats;
};

BufferPool& Pool() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace

namespace internal {

void AcquireBuffer(FloatBuffer& out, size_t num_elements) {
  // Pool reuse still counts as a tensor allocation for memprof: it is a
  // buffer the planned arena must account for even when the malloc is elided.
  obs::MemProfRecordTensorAlloc(
      static_cast<int64_t>(num_elements * sizeof(float)));
  BufferPool& pool = Pool();
  if (pool.scope_depth == 0) {
    out.assign(num_elements, 0.0f);
    return;
  }
  ++pool.stats.buffers_acquired;
  // Last-in-first-out scan: the most recently reclaimed buffer is the most
  // likely to have the right capacity (inference forwards repeat shapes in
  // reverse order of destruction).
  for (size_t i = pool.buffers.size(); i-- > 0;) {
    if (pool.buffers[i].capacity() >= num_elements) {
      out = std::move(pool.buffers[i]);
      pool.pooled_bytes -= out.capacity() * sizeof(float);
      pool.buffers.erase(pool.buffers.begin() + static_cast<ptrdiff_t>(i));
      out.assign(num_elements, 0.0f);
      ++pool.stats.buffers_reused;
      return;
    }
  }
  out.assign(num_elements, 0.0f);
}

void MaybeReclaimBuffer(FloatBuffer& buffer) noexcept {
  if (buffer.capacity() == 0) return;
  BufferPool& pool = Pool();
  if (pool.scope_depth == 0) return;
  if (pool.buffers.size() >= kMaxPooledBuffers) return;
  const size_t bytes = buffer.capacity() * sizeof(float);
  if (pool.pooled_bytes + bytes > kMaxPooledBytes) return;
  // buffers was reserved to kMaxPooledBuffers at scope entry, so this
  // push_back never reallocates (and thus never throws) in a destructor.
  pool.pooled_bytes += bytes;
  pool.buffers.push_back(std::move(buffer));
}

void NoteGradAllocation(size_t num_elements) {
  obs::MemProfRecordGradAlloc(
      static_cast<int64_t>(num_elements * sizeof(float)));
  BufferPool& pool = Pool();
  if (pool.scope_depth > 0) ++pool.stats.grad_allocations;
}

}  // namespace internal

InferenceScope::InferenceScope() {
  BufferPool& pool = Pool();
  if (pool.scope_depth == 0) pool.buffers.reserve(kMaxPooledBuffers);
  ++pool.scope_depth;
}

InferenceScope::~InferenceScope() { --Pool().scope_depth; }

bool InferenceScope::Active() { return Pool().scope_depth > 0; }

InferenceScope::Stats InferenceScope::ThreadStats() { return Pool().stats; }

void InferenceScope::ResetThreadStats() { Pool().stats = Stats{}; }

}  // namespace widen::tensor
