#include "tensor/kernel_context.h"

#include <cstdlib>
#include <thread>

#include "util/logging.h"

namespace widen::tensor {
namespace {

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("WIDEN_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
    WIDEN_LOG(Warning) << "ignoring invalid WIDEN_NUM_THREADS='" << env
                       << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

KernelContext& KernelContext::Get() {
  static KernelContext* context = new KernelContext();  // leaked: lives
  return *context;  // until process exit so worker threads never outlive it
}

KernelContext::KernelContext() { SetNumThreads(0); }

int KernelContext::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void KernelContext::SetNumThreads(int n) {
  WIDEN_CHECK_GE(n, 0) << "thread count must be >= 0 (0 = auto)";
  if (n == 0) n = ResolveDefaultThreads();
  std::lock_guard<std::mutex> lock(mu_);
  if (n == num_threads_ && (n == 1 || pool_ != nullptr)) return;
  pool_.reset();  // join old workers before spawning the new pool
  num_threads_ = n;
  if (n > 1) pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(n));
}

void ParallelForGrid(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  WIDEN_DCHECK(grain > 0);
  if (n <= grain) {  // single chunk: run inline, skip the pool entirely
    body(0, n);
    return;
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  ThreadPool* pool = KernelContext::Get().pool();
  if (pool == nullptr) {
    // Same grid formula as ParallelForChunked (ceil(n / num_chunks), which
    // can be slightly below `grain`), executed in ascending order.
    const int64_t chunk_size = (n + num_chunks - 1) / num_chunks;
    for (int64_t c = 0; c < num_chunks; ++c) {
      body(c * chunk_size, std::min(n, (c + 1) * chunk_size));
    }
    return;
  }
  ParallelForChunked(*pool, 0, static_cast<size_t>(n),
                     static_cast<size_t>(num_chunks),
                     [&body](size_t lo, size_t hi) {
                       body(static_cast<int64_t>(lo),
                            static_cast<int64_t>(hi));
                     });
}

}  // namespace widen::tensor
