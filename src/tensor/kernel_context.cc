#include "tensor/kernel_context.h"

#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace widen::tensor {
namespace {

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("WIDEN_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
    WIDEN_LOG(Warning) << "ignoring invalid WIDEN_NUM_THREADS='" << env
                       << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

KernelContext& KernelContext::Get() {
  static KernelContext* context = new KernelContext();  // leaked: lives
  return *context;  // until process exit so worker threads never outlive it
}

KernelContext::KernelContext() { SetNumThreads(0); }

int KernelContext::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void KernelContext::SetNumThreads(int n) {
  WIDEN_CHECK_GE(n, 0) << "thread count must be >= 0 (0 = auto)";
  if (n == 0) n = ResolveDefaultThreads();
  std::lock_guard<std::mutex> lock(mu_);
  if (n == num_threads_ && (n == 1 || pool_ != nullptr)) return;
  pool_.reset();  // join old workers before spawning the new pool
  num_threads_ = n;
  if (n > 1) pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(n));
}

void ParallelForGrid(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  WIDEN_DCHECK(grain > 0);
  // Chunk-utilization counters: inline_total counts single-chunk calls that
  // never touch the pool; chunks_total / calls_total give the mean fan-out
  // of the calls that do hit the grid.
  WIDEN_METRIC_COUNTER(calls_total, "widen_tensor_parallel_calls_total",
                       "ParallelForGrid invocations that used the chunk grid");
  WIDEN_METRIC_COUNTER(chunks_total, "widen_tensor_parallel_chunks_total",
                       "Chunks dispatched across all ParallelForGrid calls");
  WIDEN_METRIC_COUNTER(
      inline_total, "widen_tensor_parallel_inline_total",
      "ParallelForGrid invocations small enough to run inline (one chunk; "
      "flushed in blocks of 256 per thread)");
  if (n <= grain) {  // single chunk: run inline, skip the pool entirely
    // This path fires tens of thousands of times per second on tiny kernels,
    // so even an uncontended fetch_add is measurable next to the kernel
    // itself. Batch through a plain thread-local and flush in blocks; the
    // exported value trails the truth by at most 255 per thread.
    thread_local int64_t inline_pending = 0;
    if (++inline_pending >= 256) {
      inline_total->Add(inline_pending);
      inline_pending = 0;
    }
    obs::ProfileParallelDispatch(0);
    body(0, n);
    return;
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  calls_total->Increment();
  chunks_total->Add(num_chunks);
  obs::ProfileParallelDispatch(num_chunks);
  ThreadPool* pool = KernelContext::Get().pool();
  if (pool == nullptr) {
    // Same grid formula as ParallelForChunked (ceil(n / num_chunks), which
    // can be slightly below `grain`), executed in ascending order.
    const int64_t chunk_size = (n + num_chunks - 1) / num_chunks;
    for (int64_t c = 0; c < num_chunks; ++c) {
      body(c * chunk_size, std::min(n, (c + 1) * chunk_size));
    }
    return;
  }
  ParallelForChunked(*pool, 0, static_cast<size_t>(n),
                     static_cast<size_t>(num_chunks),
                     [&body](size_t lo, size_t hi) {
                       body(static_cast<int64_t>(lo),
                            static_cast<int64_t>(hi));
                     });
}

}  // namespace widen::tensor
