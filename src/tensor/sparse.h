// Constant sparse matrices and differentiable sparse-dense products, used by
// the full-graph propagation baselines (GCN, FastGCN, GTN).

#ifndef WIDEN_TENSOR_SPARSE_H_
#define WIDEN_TENSOR_SPARSE_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "tensor/tensor.h"

namespace widen::tensor {

/// Immutable CSR float matrix. Not differentiable — graph structure, not
/// parameters.
class SparseCsr {
 public:
  SparseCsr() = default;

  /// Builds from COO triplets (row, col, value); duplicates are summed.
  static SparseCsr FromTriplets(
      int64_t rows, int64_t cols,
      const std::vector<std::tuple<int64_t, int64_t, float>>& triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<int32_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

  /// Explicit transpose (used once when a backward pass needs A^T repeatedly).
  SparseCsr Transposed() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> offsets_;
  std::vector<int32_t> col_indices_;
  std::vector<float> values_;
};

/// y = A x with constant sparse A [m, k] and dense differentiable x [k, n].
/// Backward: dx += A^T dy. `a` must outlive the backward pass (harnesses keep
/// the adjacency alive for the whole fit; the op copies nothing).
Tensor SparseMatMul(const SparseCsr& a, const Tensor& x);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_SPARSE_H_
