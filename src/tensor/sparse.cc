#include "tensor/sparse.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace widen::tensor {

SparseCsr SparseCsr::FromTriplets(
    int64_t rows, int64_t cols,
    const std::vector<std::tuple<int64_t, int64_t, float>>& triplets) {
  WIDEN_CHECK_GE(rows, 0);
  WIDEN_CHECK_GE(cols, 0);
  // Sum duplicates via an ordered map keyed by (row, col).
  std::map<std::pair<int64_t, int64_t>, float> accumulated;
  for (const auto& [r, c, v] : triplets) {
    WIDEN_CHECK(r >= 0 && r < rows) << "row " << r;
    WIDEN_CHECK(c >= 0 && c < cols) << "col " << c;
    accumulated[{r, c}] += v;
  }
  SparseCsr out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  for (const auto& [key, value] : accumulated) {
    ++out.offsets_[static_cast<size_t>(key.first) + 1];
  }
  for (size_t i = 1; i < out.offsets_.size(); ++i) {
    out.offsets_[i] += out.offsets_[i - 1];
  }
  out.col_indices_.reserve(accumulated.size());
  out.values_.reserve(accumulated.size());
  for (const auto& [key, value] : accumulated) {
    out.col_indices_.push_back(static_cast<int32_t>(key.second));
    out.values_.push_back(value);
  }
  return out;
}

SparseCsr SparseCsr::Transposed() const {
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  triplets.reserve(static_cast<size_t>(nnz()));
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = offsets_[static_cast<size_t>(r)];
         i < offsets_[static_cast<size_t>(r) + 1]; ++i) {
      triplets.emplace_back(col_indices_[static_cast<size_t>(i)], r,
                            values_[static_cast<size_t>(i)]);
    }
  }
  return FromTriplets(cols_, rows_, triplets);
}

namespace {

// dst[m, n] += A[m, k] * src[k, n]
void SpmmInto(const SparseCsr& a, const float* src, int64_t n, float* dst) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* drow = dst + r * n;
    for (int64_t i = a.offsets()[static_cast<size_t>(r)];
         i < a.offsets()[static_cast<size_t>(r) + 1]; ++i) {
      const float v = a.values()[static_cast<size_t>(i)];
      const float* srow =
          src + static_cast<int64_t>(a.col_indices()[static_cast<size_t>(i)]) * n;
      for (int64_t j = 0; j < n; ++j) drow[j] += v * srow[j];
    }
  }
}

}  // namespace

Tensor SparseMatMul(const SparseCsr& a, const Tensor& x) {
  WIDEN_CHECK_EQ(x.shape().rank(), 2);
  WIDEN_CHECK_EQ(a.cols(), x.rows());
  const int64_t n = x.cols();
  Tensor out(Shape::Matrix(a.rows(), n));
  SpmmInto(a, x.data(), n, out.mutable_data());
  if (x.requires_grad() && !NoGradScope::Active()) {
    internal::TensorImpl* xi = x.impl_ptr().get();
    internal::TensorImpl* oi = out.impl_ptr().get();
    // The transpose is materialized once per op call; fits cache better than
    // scatter-style accumulation in the backward loop.
    auto at = std::make_shared<SparseCsr>(a.Transposed());
    oi->requires_grad = true;
    oi->parents = {x.impl_ptr()};
    oi->backward_fn = [xi, oi, at, n] {
      oi->EnsureGrad();
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      SpmmInto(*at, oi->grad.data(), n, xi->grad.data());
    };
  }
  return out;
}

}  // namespace widen::tensor
