#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/kernel_context.h"
#include "tensor/quant.h"
#include "tensor/simd/simd.h"

namespace widen::tensor {
namespace {

using internal::TensorImpl;
using obs::ProfOp;
using obs::ScopedOpProfile;

// Vectorizable inner loops dispatch through the active SIMD kernel table
// (tensor/simd/simd.h). The ParallelForGrid chunk structure — which rows or
// element ranges share a chunk — is unchanged, so thread-count determinism
// holds per ISA exactly as DESIGN.md §8 documents for the scalar kernels.

// True when the tape must record this op.
bool NeedsGrad(const Tensor& a) {
  return !NoGradScope::Active() && a.impl_ptr()->requires_grad;
}
bool NeedsGrad(const Tensor& a, const Tensor& b) {
  return NeedsGrad(a) || NeedsGrad(b);
}

// Registers `out` as a tape node computed from `parents` with `backward`.
// `backward` must capture raw TensorImpl pointers only (the parents vector
// keeps them alive; capturing shared_ptrs would create reference cycles
// through the closure).
void Attach(Tensor& out, std::vector<Tensor> parents,
            std::function<void()> backward) {
  obs::MemProfRecordTapeNode();
  TensorImpl* impl = out.impl_ptr().get();
  impl->requires_grad = true;
  impl->parents.reserve(parents.size());
  for (auto& p : parents) impl->parents.push_back(p.impl_ptr());
  impl->backward_fn = std::move(backward);
}

// Shapes for the narrow broadcast contract of Add/Sub/Mul.
enum class BroadcastKind { kSameShape, kRowVector };

BroadcastKind CheckBroadcast(const Tensor& a, const Tensor& b,
                             const char* op) {
  if (a.shape() == b.shape()) return BroadcastKind::kSameShape;
  WIDEN_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
              b.rows() == 1 && b.cols() == a.cols())
      << op << ": incompatible shapes " << a.shape().ToString() << " vs "
      << b.shape().ToString();
  return BroadcastKind::kRowVector;
}

// FLOPs are summed in a plain thread-local and flushed to the shared counter
// every 64 passes: the embedding-dim matmuls in the serving path are small
// enough that a per-pass fetch_add shows up in bench/obs_bench, while a
// thread-local add does not. The exported value trails the truth by at most
// 63 passes per thread.
void AddMatMulFlops(int64_t flops) {
  WIDEN_METRIC_COUNTER(total, "widen_tensor_matmul_flops_total",
                       "Floating point operations (2mnk per pass) executed "
                       "by MatMul forward and backward kernels (flushed in "
                       "blocks of 64 passes per thread)");
  thread_local int64_t pending_flops = 0;
  thread_local int pending_passes = 0;
  pending_flops += flops;
  if (++pending_passes >= 64) {
    total->Add(pending_flops);
    pending_flops = 0;
    pending_passes = 0;
  }
}

// Fused dequant-dot MatMul over b's quant sidecar (inference mode only —
// the caller guarantees no gradient is required). Streams the compressed
// payload instead of fp32 B; byte counts reflect the quantized traffic.
Tensor QuantMatMul(const Tensor& a, const Tensor& b, const QuantMatrix& qm) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  WIDEN_CHECK(qm.rows == k && qm.cols == n)
      << "stale quant sidecar " << qm.rows << "x" << qm.cols << " for "
      << b.shape().ToString();
  Tensor out(Shape::Matrix(m, n));
  const int64_t nb = qm.blocks_per_row();
  const bool is_int8 = qm.format == QuantFormat::kInt8Block32;
  // A fp32 + compressed B payload (int8 codes + fp32 block scales, or fp16
  // halves) + output, in bytes.
  const int64_t bytes = is_int8
                            ? 4 * m * k + k * n + 4 * k * nb + 4 * m * n
                            : 4 * m * k + 2 * k * n + 4 * m * n;
  ScopedOpProfile prof(ProfOp::kQuantMatMul, 2 * m * n * k, bytes);
  AddMatMulFlops(2 * m * n * k);
  const float* pa = a.data();
  float* po = out.mutable_data();
  if (is_int8) {
    const auto kern = simd::Active().matmul_row_q8;
    const int8_t* q = qm.q.data();
    const float* scales = qm.scales.data();
    ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        kern(pa + i * k, q, scales, po + i * n, k, n);
      }
    });
  } else {
    const auto kern = simd::Active().matmul_row_f16;
    const uint16_t* h = qm.half.data();
    ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        kern(pa + i * k, h, po + i * n, k, n);
      }
    });
  }
  return out;
}

}  // namespace

// ---- Linear algebra --------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  WIDEN_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2)
      << "MatMul requires matrices";
  WIDEN_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  {
    const QuantMatrix* qm = b.impl_ptr()->quant.get();
    if (qm != nullptr && qm->format != QuantFormat::kNone &&
        !NeedsGrad(a, b)) {
      return QuantMatMul(a, b, *qm);
    }
  }
  Tensor out(Shape::Matrix(m, n));
  // Profiler FLOP/byte counts throughout this file are analytic per-shape
  // closed forms: FLOPs count elementary float ops (a transcendental is one),
  // bytes are 4 x (elements read + elements written) with a read-modify-write
  // accumulation counted as one read plus one write (DESIGN.md §12).
  ScopedOpProfile prof(ProfOp::kMatMul, 2 * m * n * k,
                       4 * (m * k + k * n + m * n));
  AddMatMulFlops(2 * m * n * k);
  {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.mutable_data();
    // i-k-j order (j-tiled inside the row kernel); each chunk owns a
    // disjoint range of output rows, and each out[i][j] accumulates its k
    // terms in ascending order regardless of the chunk grid, so results are
    // bitwise identical for any thread count within the active ISA.
    const auto kern = simd::Active().matmul_row;
    ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        kern(pa + i * k, pb, po + i * n, k, n);
      }
    });
  }
  if (NeedsGrad(a, b)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* bi = b.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a, b}, [ai, bi, oi, m, k, n] {
      oi->EnsureGrad();
      const int64_t passes =
          (ai->requires_grad ? 1 : 0) + (bi->requires_grad ? 1 : 0);
      // dA reads dC and B and accumulates dA; dB reads A and dC and
      // accumulates dB; 2mnk FLOPs each.
      ScopedOpProfile prof(
          ProfOp::kMatMul, 2 * m * n * k * passes,
          4 * (passes * m * n + (ai->requires_grad ? k * n + 2 * m * k : 0) +
               (bi->requires_grad ? m * k + 2 * k * n : 0)));
      const float* g = oi->grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        AddMatMulFlops(2 * m * n * k);
        // dA += dC * B^T  (m x n) * (n x k); dA rows are disjoint per chunk.
        float* da = ai->grad.data();
        const float* pb = bi->data.data();
        const auto kdot = simd::Active().dot;
        ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const float* grow = g + i * n;
            float* darow = da + i * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              darow[kk] += kdot(grow, pb + kk * n, n);
            }
          }
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        AddMatMulFlops(2 * m * n * k);
        // dB += A^T * dC  (k x m) * (m x n), parallelized over dB's own
        // rows: each chunk owns dB rows [k0, k1) outright and accumulates
        // every db[kk][j]'s i-terms in ascending order — the serial kernel's
        // exact scalar sum order, with no cross-chunk reduction needed.
        float* db = bi->grad.data();
        const float* pa = ai->data.data();
        const auto kaxpy = simd::Active().axpy;
        ParallelForGrid(k, kRowGrain, [=](int64_t k0, int64_t k1) {
          for (int64_t i = 0; i < m; ++i) {
            const float* arow = pa + i * k;
            const float* grow = g + i * n;
            for (int64_t kk = k0; kk < k1; ++kk) {
              const float av = arow[kk];
              if (av == 0.0f) continue;
              kaxpy(av, grow, db + kk * n, n);
            }
          }
        });
      }
    });
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(Shape::Matrix(n, m));
  ScopedOpProfile prof(ProfOp::kTranspose, 0, 4 * 2 * m * n);
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kTranspose, m * n, 4 * 3 * m * n);
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t i = 0; i < m; ++i) da[i * n + j] += g[j * m + i];
      }
    });
  }
  return out;
}

// ---- Elementwise arithmetic --------------------------------------------------

namespace {

// Shared implementation for Add/Sub (sign = +1/-1 on b).
Tensor AddLike(const Tensor& a, const Tensor& b, float sign, const char* op) {
  BroadcastKind kind = CheckBroadcast(a, b, op);
  Tensor out(a.shape());
  const int64_t total = a.size();
  const ProfOp prof_op = sign > 0.0f ? ProfOp::kAdd : ProfOp::kSub;
  ScopedOpProfile prof(
      prof_op, total,
      4 * (kind == BroadcastKind::kSameShape ? 3 * total
                                             : 2 * total + a.cols()));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  if (kind == BroadcastKind::kSameShape) {
    const auto kern = sign > 0.0f ? simd::Active().add : simd::Active().sub;
    ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
      kern(pa + lo, pb + lo, po + lo, hi - lo);
    });
  } else {
    // Row-vector broadcast stays scalar: the chunk grid is element-ranged,
    // not row-aligned, so lanes would straddle the wrap point.
    const int64_t n = a.cols();
    ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + sign * pb[i % n];
    });
  }
  if (NeedsGrad(a, b)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* bi = b.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    const int64_t n = a.shape().rank() == 2 ? a.cols() : total;
    Attach(out, {a, b}, [ai, bi, oi, total, n, sign, kind, prof_op] {
      oi->EnsureGrad();
      const int64_t active =
          (ai->requires_grad ? 1 : 0) + (bi->requires_grad ? 1 : 0);
      ScopedOpProfile prof(prof_op, active * total, 4 * active * 3 * total);
      const float* g = oi->grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* da = ai->grad.data();
        const auto kacc = simd::Active().acc;
        ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
          kacc(g + lo, da + lo, hi - lo);
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* db = bi->grad.data();
        if (kind == BroadcastKind::kSameShape) {
          const auto kacc_s = simd::Active().acc_scaled;
          ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
            kacc_s(g + lo, sign, db + lo, hi - lo);
          });
        } else {
          // Row-vector grad is a reduction over rows into n slots; kept
          // serial in row-ascending order (it is O(total) adds either way).
          for (int64_t i = 0; i < total; ++i) db[i % n] += sign * g[i];
        }
      }
    });
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return AddLike(a, b, 1.0f, "Add"); }
Tensor Sub(const Tensor& a, const Tensor& b) { return AddLike(a, b, -1.0f, "Sub"); }

Tensor Mul(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBroadcast(a, b, "Mul");
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(
      ProfOp::kMul, total,
      4 * (kind == BroadcastKind::kSameShape ? 3 * total
                                             : 2 * total + a.cols()));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  const int64_t n = a.shape().rank() == 2 ? a.cols() : total;
  if (kind == BroadcastKind::kSameShape) {
    const auto kern = simd::Active().mul;
    ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
      kern(pa + lo, pb + lo, po + lo, hi - lo);
    });
  } else {
    ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i % n];
    });
  }
  if (NeedsGrad(a, b)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* bi = b.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a, b}, [ai, bi, oi, total, n, kind] {
      oi->EnsureGrad();
      const int64_t active =
          (ai->requires_grad ? 1 : 0) + (bi->requires_grad ? 1 : 0);
      ScopedOpProfile prof(ProfOp::kMul, active * 2 * total,
                           4 * active * 4 * total);
      const float* g = oi->grad.data();
      const float* pa = ai->data.data();
      const float* pb = bi->data.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* da = ai->grad.data();
        if (kind == BroadcastKind::kSameShape) {
          const auto kmacc = simd::Active().mul_acc;
          ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
            kmacc(g + lo, pb + lo, da + lo, hi - lo);
          });
        } else {
          ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) da[i] += g[i] * pb[i % n];
          });
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* db = bi->grad.data();
        if (kind == BroadcastKind::kSameShape) {
          const auto kmacc = simd::Active().mul_acc;
          ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
            kmacc(g + lo, pa + lo, db + lo, hi - lo);
          });
        } else {
          // Reduction over rows into n slots; serial, row-ascending.
          for (int64_t i = 0; i < total; ++i) db[i % n] += g[i] * pa[i];
        }
      }
    });
  }
  return out;
}

Tensor Scale(const Tensor& a, float c) {
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kScale, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  simd::Active().scale(pa, c, po, total);
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total, c] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kScale, 2 * total, 4 * 3 * total);
      simd::Active().acc_scaled(oi->grad.data(), c, ai->grad.data(), total);
    });
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float c) {
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kAddScalar, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < total; ++i) po[i] = pa[i] + c;
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kAddScalar, total, 4 * 3 * total);
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      for (int64_t i = 0; i < total; ++i) da[i] += g[i];
    });
  }
  return out;
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  WIDEN_CHECK(a.shape() == b.shape())
      << "Maximum: shapes " << a.shape().ToString() << " vs "
      << b.shape().ToString();
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kMaximum, total, 4 * 3 * total);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < total; ++i) po[i] = std::max(pa[i], pb[i]);
  if (NeedsGrad(a, b)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* bi = b.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a, b}, [ai, bi, oi, total] {
      oi->EnsureGrad();
      const int64_t active =
          (ai->requires_grad ? 1 : 0) + (bi->requires_grad ? 1 : 0);
      ScopedOpProfile prof(ProfOp::kMaximum, active * total,
                           4 * (3 * total + active * 2 * total));
      const float* g = oi->grad.data();
      const float* pa = ai->data.data();
      const float* pb = bi->data.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* da = ai->grad.data();
        for (int64_t i = 0; i < total; ++i) {
          if (pa[i] >= pb[i]) da[i] += g[i];
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* db = bi->grad.data();
        for (int64_t i = 0; i < total; ++i) {
          if (pb[i] > pa[i]) db[i] += g[i];
        }
      }
    });
  }
  return out;
}

// ---- Nonlinearities ----------------------------------------------------------

namespace {

// Generic unary op: forward(x) and dydx computed from (x, y). Both passes
// are chunk-parallel (each element is independent). Profiler counts are the
// family-wide nominal forms: 1 FLOP/element forward (a transcendental counts
// as one), 3 backward (dydx + multiply + accumulate).
template <typename Fwd, typename Grad>
Tensor UnaryOp(const Tensor& a, ProfOp prof_op, Fwd fwd, Grad dydx) {
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(prof_op, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fwd(pa[i]);
  });
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total, dydx, prof_op] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(prof_op, 3 * total, 4 * 5 * total);
      const float* g = oi->grad.data();
      const float* x = ai->data.data();
      const float* y = oi->data.data();
      float* da = ai->grad.data();
      ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) da[i] += g[i] * dydx(x[i], y[i]);
      });
    });
  }
  return out;
}

}  // namespace

// Relu and LeakyRelu go through the dispatched SIMD kernels rather than
// UnaryOp — they are the hot encoder nonlinearities and their select-style
// bodies vectorize losslessly (lanewise class: bitwise-identical to scalar
// on every ISA). Profiler counts match UnaryOp's nominal forms.
Tensor Relu(const Tensor& a) {
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kRelu, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  const auto kern = simd::Active().relu;
  ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
    kern(pa + lo, po + lo, hi - lo);
  });
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kRelu, 3 * total, 4 * 5 * total);
      const float* g = oi->grad.data();
      const float* x = ai->data.data();
      float* da = ai->grad.data();
      const auto kern = simd::Active().relu_bwd;
      ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
        kern(g + lo, x + lo, da + lo, hi - lo);
      });
    });
  }
  return out;
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kLeakyRelu, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  const auto kern = simd::Active().leaky_relu;
  ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
    kern(pa + lo, slope, po + lo, hi - lo);
  });
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total, slope] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kLeakyRelu, 3 * total, 4 * 5 * total);
      const float* g = oi->grad.data();
      const float* x = ai->data.data();
      float* da = ai->grad.data();
      const auto kern = simd::Active().leaky_relu_bwd;
      ParallelForGrid(total, kElementGrain, [=](int64_t lo, int64_t hi) {
        kern(g + lo, x + lo, slope, da + lo, hi - lo);
      });
    });
  }
  return out;
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a, ProfOp::kElu,
      [alpha](float x) { return x >= 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x >= 0.0f ? 1.0f : y + alpha; });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, ProfOp::kTanh, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, ProfOp::kSigmoid,
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, ProfOp::kExp, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, ProfOp::kLog, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float x, float) { return 1.0f / std::max(x, 1e-12f); });
}

// ---- Softmax / losses ---------------------------------------------------------

namespace {

// Row-parallel softmax forward shared by SoftmaxRows and MaskedSoftmaxRows;
// `pm` is an optional additive mask with a's layout (nullptr = no mask).
void SoftmaxRowsForward(const float* pa, const float* pm, float* po,
                        int64_t m, int64_t n) {
  const auto kern = simd::Active().softmax_row;
  ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      kern(pa + i * n, pm == nullptr ? nullptr : pm + i * n, po + i * n, n);
    }
  });
}

// Row-parallel softmax backward: da += y * (g - <g, y>) per row. Shared by
// SoftmaxRows and MaskedSoftmaxRows (an additive mask has unit Jacobian
// toward the logits, so the backward is identical).
void SoftmaxRowsBackward(const float* g, const float* y, float* da,
                         int64_t m, int64_t n) {
  const auto kern = simd::Active().softmax_row_bwd;
  ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      kern(g + i * n, y + i * n, da + i * n, n);
    }
  });
}

}  // namespace

Tensor SoftmaxRows(const Tensor& a) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(a.shape());
  // Per row: n-1 max comparisons, then n x (subtract, exp, sum-add) and n
  // normalizing multiplies — 5 FLOPs/element nominal.
  ScopedOpProfile prof(ProfOp::kSoftmaxRows, 5 * m * n, 4 * 2 * m * n);
  SoftmaxRowsForward(a.data(), nullptr, out.mutable_data(), m, n);
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      // Per element: 2 for the <g, y> dot, then subtract/multiply/accumulate.
      ScopedOpProfile prof(ProfOp::kSoftmaxRows, 5 * m * n, 4 * 4 * m * n);
      SoftmaxRowsBackward(oi->grad.data(), oi->data.data(), ai->grad.data(),
                          m, n);
    });
  }
  return out;
}

Tensor MaskedSoftmaxRows(const Tensor& a, const Tensor& mask) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  WIDEN_CHECK(a.shape() == mask.shape())
      << "MaskedSoftmaxRows: shapes " << a.shape().ToString() << " vs "
      << mask.shape().ToString();
  WIDEN_CHECK(!mask.requires_grad())
      << "MaskedSoftmaxRows: the mask is a constant; no gradient flows to it";
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(a.shape());
  // SoftmaxRows plus one mask add per element (the mask is also read).
  ScopedOpProfile prof(ProfOp::kMaskedSoftmaxRows, 6 * m * n, 4 * 3 * m * n);
  SoftmaxRowsForward(a.data(), mask.data(), out.mutable_data(), m, n);
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kMaskedSoftmaxRows, 5 * m * n,
                           4 * 4 * m * n);
      SoftmaxRowsBackward(oi->grad.data(), oi->data.data(), ai->grad.data(),
                          m, n);
    });
  }
  return out;
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<float>* sample_weights) {
  WIDEN_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t m = logits.rows(), c = logits.cols();
  WIDEN_CHECK_EQ(static_cast<int64_t>(labels.size()), m);
  if (sample_weights != nullptr) {
    WIDEN_CHECK_EQ(static_cast<int64_t>(sample_weights->size()), m);
  }
  // Softmax (5 FLOPs/element) plus log + multiply + accumulate per row.
  ScopedOpProfile prof(ProfOp::kSoftmaxCrossEntropy, 5 * m * c + 3 * m,
                       4 * (2 * m * c + m));

  // Forward: stable log-softmax; store probabilities for the backward pass.
  // The per-row softmax is chunk-parallel; the loss reduction then runs
  // serially in row-ascending order (same scalar sum order as the serial
  // kernel, so the loss is bitwise identical for every thread count).
  for (int64_t i = 0; i < m; ++i) {
    const int32_t y = labels[static_cast<size_t>(i)];
    WIDEN_CHECK(y >= 0 && y < c) << "label out of range: " << y;
  }
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(m * c), 0.0f);
  const float* pl = logits.data();
  SoftmaxRowsForward(pl, nullptr, probs->data(), m, c);
  double loss_sum = 0.0;
  double weight_sum = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    const float w =
        sample_weights != nullptr ? (*sample_weights)[static_cast<size_t>(i)]
                                  : 1.0f;
    if (w != 0.0f) {
      const float* prow = probs->data() + i * c;
      const int32_t y = labels[static_cast<size_t>(i)];
      loss_sum -= static_cast<double>(w) *
                  std::log(std::max(prow[y], 1e-12f));
      weight_sum += w;
    }
  }
  const float norm =
      weight_sum > 0.0 ? static_cast<float>(1.0 / weight_sum) : 0.0f;
  Tensor out = Tensor::Scalar(static_cast<float>(loss_sum) * norm);

  if (NeedsGrad(logits)) {
    TensorImpl* li = logits.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    auto labels_copy = std::make_shared<std::vector<int32_t>>(labels);
    std::shared_ptr<std::vector<float>> weights_copy;
    if (sample_weights != nullptr) {
      weights_copy = std::make_shared<std::vector<float>>(*sample_weights);
    }
    Attach(out, {logits},
           [li, oi, probs, labels_copy, weights_copy, m, c, norm] {
             oi->EnsureGrad();
             if (!li->requires_grad) return;
             li->EnsureGrad();
             ScopedOpProfile prof(ProfOp::kSoftmaxCrossEntropy, 3 * m * c,
                                  4 * 3 * m * c);
             const float upstream = oi->grad[0];
             float* dl = li->grad.data();
             // Each logits row's gradient is independent: row-parallel.
             ParallelForGrid(m, kRowGrain, [&](int64_t r0, int64_t r1) {
               for (int64_t i = r0; i < r1; ++i) {
                 const float w =
                     weights_copy ? (*weights_copy)[static_cast<size_t>(i)]
                                  : 1.0f;
                 if (w == 0.0f) continue;
                 const float scale = upstream * norm * w;
                 const float* prow = probs->data() + i * c;
                 float* drow = dl + i * c;
                 const int32_t y = (*labels_copy)[static_cast<size_t>(i)];
                 for (int64_t j = 0; j < c; ++j) drow[j] += scale * prow[j];
                 drow[y] -= scale;
               }
             });
           });
  }
  return out;
}

Tensor SumSquares(const Tensor& a) {
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kSumSquares, 2 * total, 4 * total);
  const float* pa = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < total; ++i) {
    acc += static_cast<double>(pa[i]) * pa[i];
  }
  Tensor out = Tensor::Scalar(static_cast<float>(acc));
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kSumSquares, 3 * total, 4 * 3 * total);
      const float upstream = oi->grad[0];
      const float* x = ai->data.data();
      float* da = ai->grad.data();
      for (int64_t i = 0; i < total; ++i) da[i] += 2.0f * upstream * x[i];
    });
  }
  return out;
}

// ---- Shape surgery -------------------------------------------------------------

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  WIDEN_CHECK(!parts.empty());
  const int64_t n = parts[0].cols();
  int64_t total_rows = 0;
  bool needs = false;
  for (const Tensor& p : parts) {
    WIDEN_CHECK_EQ(p.shape().rank(), 2);
    WIDEN_CHECK_EQ(p.cols(), n);
    total_rows += p.rows();
    needs = needs || NeedsGrad(p);
  }
  needs = needs && !NoGradScope::Active();
  Tensor out(Shape::Matrix(total_rows, n));
  ScopedOpProfile prof(ProfOp::kConcatRows, 0, 4 * 2 * total_rows * n);
  float* po = out.mutable_data();
  int64_t row = 0;
  for (const Tensor& p : parts) {
    std::memcpy(po + row * n, p.data(),
                static_cast<size_t>(p.size()) * sizeof(float));
    row += p.rows();
  }
  if (needs) {
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> offsets;
    int64_t off = 0;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl_ptr().get());
      offsets.push_back(off);
      off += p.rows();
    }
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, parts, [impls, offsets, oi, n] {
      oi->EnsureGrad();
      const int64_t total = oi->shape.NumElements();
      ScopedOpProfile prof(ProfOp::kConcatRows, total, 4 * 3 * total);
      const float* g = oi->grad.data();
      for (size_t k = 0; k < impls.size(); ++k) {
        TensorImpl* pi = impls[k];
        if (!pi->requires_grad) continue;
        pi->EnsureGrad();
        const int64_t rows_k = pi->shape.rows();
        const float* src = g + offsets[k] * n;
        float* dst = pi->grad.data();
        for (int64_t i = 0; i < rows_k * n; ++i) dst[i] += src[i];
      }
    });
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  WIDEN_CHECK(!parts.empty());
  const int64_t m = parts[0].rows();
  int64_t total_cols = 0;
  bool needs = false;
  for (const Tensor& p : parts) {
    WIDEN_CHECK_EQ(p.shape().rank(), 2);
    WIDEN_CHECK_EQ(p.rows(), m);
    total_cols += p.cols();
    needs = needs || NeedsGrad(p);
  }
  Tensor out(Shape::Matrix(m, total_cols));
  ScopedOpProfile prof(ProfOp::kConcatCols, 0, 4 * 2 * m * total_cols);
  float* po = out.mutable_data();
  int64_t col = 0;
  for (const Tensor& p : parts) {
    const int64_t pc = p.cols();
    const float* src = p.data();
    for (int64_t i = 0; i < m; ++i) {
      std::memcpy(po + i * total_cols + col, src + i * pc,
                  static_cast<size_t>(pc) * sizeof(float));
    }
    col += pc;
  }
  if (needs) {
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> offsets;
    int64_t off = 0;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl_ptr().get());
      offsets.push_back(off);
      off += p.cols();
    }
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, parts, [impls, offsets, oi, m, total_cols] {
      oi->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kConcatCols, m * total_cols,
                           4 * 3 * m * total_cols);
      const float* g = oi->grad.data();
      for (size_t k = 0; k < impls.size(); ++k) {
        TensorImpl* pi = impls[k];
        if (!pi->requires_grad) continue;
        pi->EnsureGrad();
        const int64_t pc = pi->shape.cols();
        float* dst = pi->grad.data();
        for (int64_t i = 0; i < m; ++i) {
          const float* src = g + i * total_cols + offsets[k];
          for (int64_t j = 0; j < pc; ++j) dst[i * pc + j] += src[j];
        }
      }
    });
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t count) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  WIDEN_CHECK(start >= 0 && count >= 0 && start + count <= a.rows())
      << "SliceRows [" << start << ", " << start + count << ") of "
      << a.rows() << " rows";
  const int64_t n = a.cols();
  Tensor out(Shape::Matrix(count, n));
  ScopedOpProfile prof(ProfOp::kSliceRows, 0, 4 * 2 * count * n);
  std::memcpy(out.mutable_data(), a.data() + start * n,
              static_cast<size_t>(count * n) * sizeof(float));
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, start, count, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kSliceRows, count * n, 4 * 3 * count * n);
      const float* g = oi->grad.data();
      float* da = ai->grad.data() + start * n;
      for (int64_t i = 0; i < count * n; ++i) da[i] += g[i];
    });
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t count) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  WIDEN_CHECK(start >= 0 && count >= 0 && start + count <= a.cols())
      << "SliceCols [" << start << ", " << start + count << ") of "
      << a.cols() << " cols";
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(Shape::Matrix(m, count));
  ScopedOpProfile prof(ProfOp::kSliceCols, 0, 4 * 2 * m * count);
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(po + i * count, pa + i * n + start,
                static_cast<size_t>(count) * sizeof(float));
  }
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, start, count, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kSliceCols, m * count, 4 * 3 * m * count);
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < count; ++j) {
          da[i * n + start + j] += g[i * count + j];
        }
      }
    });
  }
  return out;
}

Tensor ScaleBy(const Tensor& a, const Tensor& scalar) {
  WIDEN_CHECK_EQ(scalar.size(), 1) << "ScaleBy expects a scalar tensor";
  const float s = scalar.data()[0];
  Tensor out(a.shape());
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kScaleBy, total, 4 * 2 * total);
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < total; ++i) po[i] = pa[i] * s;
  if (NeedsGrad(a, scalar)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* si = scalar.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a, scalar}, [ai, si, oi, total] {
      oi->EnsureGrad();
      const int64_t active =
          (ai->requires_grad ? 1 : 0) + (si->requires_grad ? 1 : 0);
      ScopedOpProfile prof(ProfOp::kScaleBy, active * 2 * total,
                           4 * active * 3 * total);
      const float* g = oi->grad.data();
      const float s_val = si->data[0];
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* da = ai->grad.data();
        for (int64_t i = 0; i < total; ++i) da[i] += g[i] * s_val;
      }
      if (si->requires_grad) {
        si->EnsureGrad();
        const float* x = ai->data.data();
        double acc = 0.0;
        for (int64_t i = 0; i < total; ++i) {
          acc += static_cast<double>(g[i]) * x[i];
        }
        si->grad[0] += static_cast<float>(acc);
      }
    });
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int32_t>& indices) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t n = a.cols();
  const int64_t k = static_cast<int64_t>(indices.size());
  Tensor out(Shape::Matrix(k, n));
  ScopedOpProfile prof(ProfOp::kGatherRows, 0, 4 * 2 * k * n);
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < k; ++i) {
    const int32_t idx = indices[static_cast<size_t>(i)];
    WIDEN_CHECK(idx >= 0 && idx < a.rows())
        << "GatherRows index " << idx << " out of [0, " << a.rows() << ")";
  }
  const int32_t* pi = indices.data();
  ParallelForGrid(k, kRowGrain, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      std::memcpy(po + i * n, pa + static_cast<int64_t>(pi[i]) * n,
                  static_cast<size_t>(n) * sizeof(float));
    }
  });
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    auto idx_copy = std::make_shared<std::vector<int32_t>>(indices);
    const int64_t rows_a = a.rows();
    Attach(out, {a}, [ai, oi, idx_copy, k, n, rows_a] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      // Algorithmic traffic of the scatter-add (the parallel destination
      // scan re-reads the index list per chunk, which is not counted).
      ScopedOpProfile prof(ProfOp::kGatherRows, k * n, 4 * 3 * k * n);
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      const int32_t* idx = idx_copy->data();
      if (KernelContext::Get().pool() == nullptr) {
        // Serial scatter-add, gather-ascending.
        for (int64_t i = 0; i < k; ++i) {
          float* dst = da + static_cast<int64_t>(idx[i]) * n;
          const float* src = g + i * n;
          for (int64_t j = 0; j < n; ++j) dst[j] += src[j];
        }
        return;
      }
      // Parallel scatter with duplicate indices: chunk the DESTINATION rows
      // so writes never conflict; each chunk scans the index list and takes
      // the entries landing in its range, still in gather-ascending order —
      // per destination element that is the serial kernel's exact sum order,
      // so serial and parallel paths agree bitwise. The O(chunks * k) index
      // scan is bounded by a coarse grid (at most 64 chunks).
      const int64_t grain =
          std::max<int64_t>(kRowGrain, (rows_a + 63) / 64);
      ParallelForGrid(rows_a, grain, [=](int64_t r0, int64_t r1) {
        for (int64_t i = 0; i < k; ++i) {
          const int64_t row = idx[i];
          if (row < r0 || row >= r1) continue;
          float* dst = da + row * n;
          const float* src = g + i * n;
          for (int64_t j = 0; j < n; ++j) dst[j] += src[j];
        }
      });
    });
  }
  return out;
}

// ---- Reductions ------------------------------------------------------------------

Tensor SumRows(const Tensor& a) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(Shape::Matrix(1, n));
  ScopedOpProfile prof(ProfOp::kSumRows, m * n, 4 * (m * n + n));
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  }
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kSumRows, m * n, 4 * (2 * m * n + n));
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) da[i * n + j] += g[j];
      }
    });
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  WIDEN_CHECK_GT(a.rows(), 0);
  return Scale(SumRows(a), 1.0f / static_cast<float>(a.rows()));
}

Tensor SumAll(const Tensor& a) {
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kSumAll, total, 4 * total);
  const float* pa = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < total; ++i) acc += pa[i];
  Tensor out = Tensor::Scalar(static_cast<float>(acc));
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, total] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kSumAll, total, 4 * 2 * total);
      const float g = oi->grad[0];
      float* da = ai->grad.data();
      for (int64_t i = 0; i < total; ++i) da[i] += g;
    });
  }
  return out;
}

Tensor MeanAll(const Tensor& a) {
  WIDEN_CHECK_GT(a.size(), 0);
  return Scale(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

// ---- Normalization / regularization ------------------------------------------------

Tensor RowL2Normalize(const Tensor& a) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t m = a.rows(), n = a.cols();
  Tensor out(a.shape());
  ScopedOpProfile prof(ProfOp::kRowL2Normalize, 3 * m * n, 4 * 2 * m * n);
  auto norms = std::make_shared<std::vector<float>>(static_cast<size_t>(m));
  const float* pa = a.data();
  float* po = out.mutable_data();
  {
    float* pn = norms->data();
    const auto ksumsq = simd::Active().sumsq_row;
    const auto kscale = simd::Active().scale;
    ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        const float* row = pa + i * n;
        const double sq = ksumsq(row, n);
        const float norm = std::max(static_cast<float>(std::sqrt(sq)), 1e-12f);
        pn[i] = norm;
        kscale(row, 1.0f / norm, po + i * n, n);
      }
    });
  }
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, norms, m, n] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kRowL2Normalize, 5 * m * n,
                           4 * 4 * m * n);
      const float* g = oi->grad.data();
      const float* y = oi->data.data();
      const float* pn = norms->data();
      float* da = ai->grad.data();
      const auto kdot = simd::Active().dot;
      const auto kl2bwd = simd::Active().l2norm_bwd_row;
      ParallelForGrid(m, kRowGrain, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* grow = g + i * n;
          const float* yrow = y + i * n;
          const float dot = kdot(grow, yrow, n);
          kl2bwd(grow, yrow, dot, 1.0f / pn[i], da + i * n, n);
        }
      });
    });
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  WIDEN_CHECK(p >= 0.0f && p < 1.0f) << "dropout p = " << p;
  if (!training || p == 0.0f) return a;
  const int64_t total = a.size();
  ScopedOpProfile prof(ProfOp::kDropout, total, 4 * 3 * total);
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  auto mask = std::make_shared<std::vector<float>>(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    (*mask)[static_cast<size_t>(i)] =
        rng.Bernoulli(keep) ? inv_keep : 0.0f;
  }
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  for (int64_t i = 0; i < total; ++i) {
    po[i] = pa[i] * (*mask)[static_cast<size_t>(i)];
  }
  if (NeedsGrad(a)) {
    TensorImpl* ai = a.impl_ptr().get();
    TensorImpl* oi = out.impl_ptr().get();
    Attach(out, {a}, [ai, oi, mask, total] {
      oi->EnsureGrad();
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      ScopedOpProfile prof(ProfOp::kDropout, 2 * total, 4 * 4 * total);
      const float* g = oi->grad.data();
      float* da = ai->grad.data();
      for (int64_t i = 0; i < total; ++i) {
        da[i] += g[i] * (*mask)[static_cast<size_t>(i)];
      }
    });
  }
  return out;
}

// ---- Non-differentiable helpers --------------------------------------------------

std::vector<int32_t> ArgMaxRows(const Tensor& a) {
  WIDEN_CHECK_EQ(a.shape().rank(), 2);
  const int64_t m = a.rows(), n = a.cols();
  WIDEN_CHECK_GT(n, 0);
  std::vector<int32_t> out(static_cast<size_t>(m));
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    int32_t best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = static_cast<int32_t>(j);
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

Tensor CausalAttentionMask(int64_t rows, float fill) {
  Tensor mask(Shape::Matrix(rows, rows));
  float* pm = mask.mutable_data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < rows; ++c) {
      pm[r * rows + c] = (r <= c) ? 0.0f : fill;
    }
  }
  return mask;
}

}  // namespace widen::tensor
