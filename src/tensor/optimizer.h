// First-order optimizers over a set of parameter tensors.

#ifndef WIDEN_TENSOR_OPTIMIZER_H_
#define WIDEN_TENSOR_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace widen::tensor {

/// Base optimizer: owns handles to the parameters it updates. Parameters may
/// be registered once and stepped repeatedly; ZeroGrad() between iterations.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a differentiable leaf for updates.
  void AddParameter(const Tensor& parameter);
  void AddParameters(const std::vector<Tensor>& parameters);

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears gradients on all registered parameters.
  void ZeroGrad();

  /// Rescales all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  size_t num_parameters() const { return parameters_.size(); }
  int64_t TotalParameterCount() const;

 protected:
  std::vector<Tensor> parameters_;
};

/// Stochastic gradient descent with optional decoupled L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float weight_decay = 0.0f)
      : learning_rate_(learning_rate), weight_decay_(weight_decay) {}

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float weight_decay_;
};

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay (AdamW-style).
class Adam final : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f, float weight_decay = 0.0f)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        weight_decay_(weight_decay) {}

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }
  int64_t step_count() const { return step_; }

  /// Checkpointing access to the moment estimates. Both lists are empty
  /// until the first Step() (they are lazily sized).
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }

  /// Restores a state captured from an identically parameterized optimizer.
  /// Empty moment lists reset to the pre-first-Step() state; otherwise both
  /// lists must match the registered parameters element-for-element.
  Status RestoreState(int64_t step, std::vector<std::vector<float>> m,
                      std::vector<std::vector<float>> v);

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_ = 0;
  // Lazily sized to match parameters_ on first Step().
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_OPTIMIZER_H_
