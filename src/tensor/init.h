// Parameter initialization schemes.

#ifndef WIDEN_TENSOR_INIT_H_
#define WIDEN_TENSOR_INIT_H_

#include <string>

#include "tensor/tensor.h"
#include "util/random.h"

namespace widen::tensor {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Returns a differentiable leaf tensor.
Tensor XavierUniform(const Shape& shape, Rng& rng, std::string label = "");

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). For ReLU stacks.
Tensor HeNormal(const Shape& shape, Rng& rng, std::string label = "");

/// N(0, stddev) initialization (embedding tables).
Tensor NormalInit(const Shape& shape, Rng& rng, float stddev,
                  std::string label = "");

/// Zero-initialized differentiable leaf (biases).
Tensor ZeroParam(const Shape& shape, std::string label = "");

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_INIT_H_
