#include "tensor/shape.h"

#include <sstream>

namespace widen::tensor {

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < rank_; ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace widen::tensor
