// A dense float tensor with reverse-mode automatic differentiation.
//
// Tensor is a value-semantic handle onto shared storage (like torch.Tensor):
// copies alias the same buffer, and the autograd tape is embedded in the
// nodes themselves (each result remembers its parents and a backward
// closure). Call Backward() on a scalar loss to populate `grad()` on every
// reachable tensor that `requires_grad()`.
//
// The engine is deliberately dynamic (tape built per forward pass), mirroring
// the define-by-run style of the frameworks the paper's models were designed
// in, which keeps the WIDEN downsampling logic — whose tensor shapes shrink
// across training — straightforward to express.

#ifndef WIDEN_TENSOR_TENSOR_H_
#define WIDEN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/aligned_buffer.h"
#include "tensor/shape.h"
#include "util/logging.h"

namespace widen::tensor {

class Tensor;
struct QuantMatrix;  // tensor/quant.h — block-quantized serving sidecar

/// RAII guard that disables autograd tape construction on this thread
/// (torch.no_grad analogue). Ops executed inside produce constant results
/// even when operands require gradients — used for inference and for the
/// embedding-refresh passes of WIDEN's training loop.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();

  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

  /// True while any NoGradScope is alive on this thread.
  static bool Active();

 private:
  bool previous_;
};

namespace internal {

// Inference buffer-pool hooks (tensor/inference.cc). All three are cheap
// no-ops unless an InferenceScope is active on the calling thread or the
// op-level profiler is enabled (memprof allocation accounting).
void AcquireBuffer(FloatBuffer& out, size_t num_elements);
void MaybeReclaimBuffer(FloatBuffer& buffer) noexcept;
void NoteGradAllocation(size_t num_elements);

/// Shared state behind a Tensor handle. Public only to the ops layer.
struct TensorImpl {
  Shape shape;
  FloatBuffer data;  // 64-byte-aligned head (tensor/aligned_buffer.h)

  // Autograd.
  bool requires_grad = false;
  FloatBuffer grad;                        // lazily sized to data.size()
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;       // accumulates into parents' grads

  // Block-quantized serving sidecar (tensor/quant.h), attached at
  // checkpoint-load time to frozen weights; consulted only by the
  // inference-mode MatMul. Must be treated as stale if `data` is mutated.
  std::shared_ptr<QuantMatrix> quant;

  // Debug label (parameter name, op name); empty for intermediates.
  std::string label;

  ~TensorImpl() { MaybeReclaimBuffer(data); }

  void EnsureGrad() {
    if (grad.size() != data.size()) {
      NoteGradAllocation(data.size());
      grad.assign(data.size(), 0.0f);
    }
  }
};

}  // namespace internal

/// Value-semantic handle to a (possibly differentiable) dense float tensor.
class Tensor {
 public:
  /// Null handle; most operations on it abort. Test with defined().
  Tensor() = default;

  /// Allocates a zero-filled tensor of `shape`.
  explicit Tensor(const Shape& shape);

  static Tensor Zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor Full(const Shape& shape, float value);
  /// Takes ownership of `values`; size must match shape.NumElements().
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  /// Scalar (rank-0) tensor.
  static Tensor Scalar(float value);

  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const { return impl()->shape; }
  int64_t rows() const { return shape().rows(); }
  int64_t cols() const { return shape().cols(); }
  int64_t size() const { return shape().NumElements(); }

  /// Raw row-major storage (head is 64-byte aligned).
  const float* data() const { return impl()->data.data(); }
  float* mutable_data() { return impl()->data.data(); }
  const FloatBuffer& values() const { return impl()->data; }

  /// Matrix element accessors (rank-2 only).
  float at(int64_t r, int64_t c) const {
    WIDEN_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return impl()->data[static_cast<size_t>(r * cols() + c)];
  }
  void set(int64_t r, int64_t c, float v) {
    WIDEN_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    impl()->data[static_cast<size_t>(r * cols() + c)] = v;
  }

  /// Value of a scalar (rank-0 or single-element) tensor.
  float item() const {
    WIDEN_CHECK_EQ(size(), 1);
    return impl()->data[0];
  }

  // ---- Autograd --------------------------------------------------------

  bool requires_grad() const { return impl()->requires_grad; }
  /// Marks this tensor as a differentiation leaf (parameter/input).
  Tensor& set_requires_grad(bool value) {
    impl()->requires_grad = value;
    if (value) impl()->EnsureGrad();
    return *this;
  }

  /// Gradient buffer; valid after Backward() for tensors that require grad.
  const float* grad() const {
    WIDEN_CHECK(requires_grad()) << "grad() on non-differentiable tensor";
    const_cast<internal::TensorImpl*>(impl())->EnsureGrad();
    return impl()->grad.data();
  }
  float* mutable_grad() {
    impl()->EnsureGrad();
    return impl()->grad.data();
  }
  float grad_at(int64_t r, int64_t c) const {
    return grad()[static_cast<size_t>(r * cols() + c)];
  }

  /// Clears this tensor's gradient buffer to zero.
  void ZeroGrad() {
    impl()->EnsureGrad();
    std::fill(impl()->grad.begin(), impl()->grad.end(), 0.0f);
  }

  /// Reverse-mode differentiation seeded from this tensor, which must be a
  /// scalar. Accumulates into the grad buffers of all reachable tensors.
  void Backward();

  /// Drops autograd history (parents + closure) so the tape can be freed
  /// between iterations; data and grad are kept.
  void DetachInPlace() {
    impl()->parents.clear();
    impl()->backward_fn = nullptr;
  }

  /// Returns a copy of the data in a fresh, history-free tensor.
  Tensor DetachedCopy() const;

  // ---- Debugging -------------------------------------------------------

  Tensor& set_label(std::string label) {
    impl()->label = std::move(label);
    return *this;
  }
  const std::string& label() const { return impl()->label; }

  /// Human-readable rendering (full contents for small tensors).
  std::string ToString() const;

  /// Stable identity of the underlying buffer (aliasing test).
  const void* id() const { return impl_.get(); }

  // Ops layer access.
  const std::shared_ptr<internal::TensorImpl>& impl_ptr() const {
    WIDEN_CHECK(defined()) << "operation on null tensor";
    return impl_;
  }
  static Tensor WrapImpl(std::shared_ptr<internal::TensorImpl> impl) {
    Tensor t;
    t.impl_ = std::move(impl);
    return t;
  }

 private:
  internal::TensorImpl* impl() const {
    WIDEN_CHECK(impl_ != nullptr) << "operation on null tensor";
    return impl_.get();
  }

  std::shared_ptr<internal::TensorImpl> impl_;
};

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_TENSOR_H_
