#include "tensor/tensor.h"

#include <sstream>

#include "obs/memprof.h"

namespace widen::tensor {

namespace {
thread_local bool no_grad_active = false;
}  // namespace

NoGradScope::NoGradScope() : previous_(no_grad_active) {
  no_grad_active = true;
}

NoGradScope::~NoGradScope() { no_grad_active = previous_; }

bool NoGradScope::Active() { return no_grad_active; }

Tensor::Tensor(const Shape& shape) {
  impl_ = std::make_shared<internal::TensorImpl>();
  impl_->shape = shape;
  internal::AcquireBuffer(impl_->data,
                          static_cast<size_t>(shape.NumElements()));
}

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t(shape);
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  WIDEN_CHECK_EQ(static_cast<int64_t>(values.size()), shape.NumElements());
  Tensor t;
  t.impl_ = std::make_shared<internal::TensorImpl>();
  t.impl_->shape = shape;
  // Copied (not moved): tensor storage is 64-byte aligned, the caller's
  // default-allocated vector is not.
  t.impl_->data.assign(values.begin(), values.end());
  obs::MemProfRecordTensorAlloc(
      static_cast<int64_t>(t.impl_->data.size() * sizeof(float)));
  return t;
}

Tensor Tensor::Scalar(float value) {
  return FromVector(Shape{}, {value});
}

Tensor Tensor::DetachedCopy() const {
  Tensor t;
  t.impl_ = std::make_shared<internal::TensorImpl>();
  t.impl_->shape = impl()->shape;
  t.impl_->data = impl()->data;
  obs::MemProfRecordTensorAlloc(
      static_cast<int64_t>(t.impl_->data.size() * sizeof(float)));
  return t;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream out;
  out << "Tensor" << shape().ToString();
  if (!label().empty()) out << " '" << label() << "'";
  if (size() <= 64) {
    out << " {";
    for (int64_t i = 0; i < size(); ++i) {
      if (i > 0) out << ", ";
      out << impl()->data[static_cast<size_t>(i)];
    }
    out << "}";
  }
  return out.str();
}

}  // namespace widen::tensor
