#include "tensor/serialize.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "obs/metrics.h"
#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace widen::tensor {
namespace {

constexpr char kMagic[4] = {'W', 'D', 'N', 'T'};
constexpr char kFooterMagic[4] = {'W', 'D', 'N', 'F'};
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
// Written only when the bundle holds quant records; the record loop itself
// is version-agnostic, so v3 is purely an early loud failure for old
// readers that would otherwise reject the unknown record kind mid-file.
constexpr uint32_t kVersionQuant = 3;

enum RecordKind : uint8_t {
  kTensorRecord = 0,
  kBlobRecord = 1,
  kQuantRecord = 2,
};

// Structural sanity bounds: far above anything the library produces, low
// enough that corrupt length fields cannot drive multi-gigabyte allocations.
constexpr uint64_t kMaxRecords = 1ull << 20;
constexpr uint32_t kMaxNameLength = 4096;
constexpr int64_t kMaxTensorElements = int64_t{1} << 28;  // 1 GiB of floats
constexpr uint64_t kMaxBlobBytes = 1ull << 30;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool ReadScalar(std::FILE* file, T* value) {
  return std::fread(value, sizeof(T), 1, file) == 1;
}

/// dims product with overflow checking; corrupt dimension fields must fail
/// cleanly rather than overflow int64 and size a std::vector negatively.
StatusOr<int64_t> CheckedElementCount(const std::vector<int64_t>& dims) {
  int64_t total = 1;
  for (int64_t dim : dims) {
    if (dim < 0) return Status::InvalidArgument("corrupt bundle (dimension)");
    if (dim == 0) {
      total = 0;
      continue;
    }
    if (total > kMaxTensorElements / dim) {
      return Status::InvalidArgument(
          "corrupt bundle (element count overflow)");
    }
    total *= dim;
  }
  if (total > kMaxTensorElements) {
    return Status::InvalidArgument("corrupt bundle (element count overflow)");
  }
  return total;
}

Shape ShapeFromDims(const std::vector<int64_t>& dims) {
  switch (dims.size()) {
    case 0:
      return Shape{};
    case 1:
      return Shape{dims[0]};
    case 2:
      return Shape{dims[0], dims[1]};
    case 3:
      return Shape{dims[0], dims[1], dims[2]};
    default:
      return Shape{dims[0], dims[1], dims[2], dims[3]};
  }
}

Status ValidateNames(const Bundle& bundle) {
  std::set<std::string> names;
  auto check = [&names](const std::string& name) {
    if (name.empty()) {
      return Status::InvalidArgument("record name must not be empty");
    }
    if (name.size() > kMaxNameLength) {
      return Status::InvalidArgument(StrCat("record name too long: '", name,
                                            "'"));
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument(StrCat("duplicate record name '", name,
                                            "'"));
    }
    return Status::OK();
  };
  for (const auto& [name, tensor] : bundle.tensors) {
    WIDEN_RETURN_IF_ERROR(check(name));
    if (!tensor.defined()) {
      return Status::InvalidArgument(StrCat("tensor '", name, "' is null"));
    }
  }
  for (const auto& [name, bytes] : bundle.blobs) {
    WIDEN_RETURN_IF_ERROR(check(name));
    if (bytes.size() > kMaxBlobBytes) {
      return Status::InvalidArgument(StrCat("blob '", name, "' too large"));
    }
  }
  // Quant names live in their own namespace (a quant may legitimately share
  // its tensor's name as a sidecar) but must be unique among themselves and
  // structurally consistent.
  std::set<std::string> quant_names;
  for (const auto& [name, qm] : bundle.quants) {
    if (name.empty() || name.size() > kMaxNameLength) {
      return Status::InvalidArgument(StrCat("bad quant record name '", name,
                                            "'"));
    }
    if (!quant_names.insert(name).second) {
      return Status::InvalidArgument(StrCat("duplicate quant record '", name,
                                            "'"));
    }
    if (qm.format == QuantFormat::kNone || qm.rows < 0 || qm.cols < 0 ||
        qm.rows * qm.cols > kMaxTensorElements) {
      return Status::InvalidArgument(StrCat("invalid quant record '", name,
                                            "'"));
    }
    const int64_t total = qm.rows * qm.cols;
    const bool consistent =
        qm.format == QuantFormat::kInt8Block32
            ? static_cast<int64_t>(qm.q.size()) == total &&
                  static_cast<int64_t>(qm.scales.size()) ==
                      qm.rows * qm.blocks_per_row()
            : static_cast<int64_t>(qm.half.size()) == total &&
                  qm.scales.empty();
    if (!consistent) {
      return Status::InvalidArgument(
          StrCat("quant record '", name, "' has inconsistent payload sizes"));
    }
  }
  return Status::OK();
}

/// Streams bytes to a FILE while maintaining the running whole-file CRC.
struct CrcFileWriter {
  std::FILE* file;
  uint32_t file_crc = 0;
  int64_t bytes_written = 0;
  bool ok = true;

  void Write(const void* data, size_t size) {
    if (!ok) return;
    if (std::fwrite(data, 1, size, file) != size) {
      ok = false;
      return;
    }
    bytes_written += static_cast<int64_t>(size);
    file_crc = Crc32cExtend(file_crc, data, size);
  }

  template <typename T>
  void WriteScalar(T value) {
    Write(&value, sizeof(T));
  }
};

void EncodeRecordHeader(ByteWriter& writer, RecordKind kind,
                        const std::string& name) {
  writer.WriteScalar<uint8_t>(kind);
  writer.WriteScalar<uint32_t>(static_cast<uint32_t>(name.size()));
  writer.WriteBytes(name.data(), name.size());
}

/// Reads record fields while maintaining both the per-record and whole-file
/// CRCs, with explicit remaining-byte accounting so corrupt length fields
/// cannot trigger oversized reads.
struct CrcFileReader {
  std::FILE* file;
  int64_t remaining;  // bytes left in the file from the current position
  uint32_t file_crc = 0;
  uint32_t record_crc = 0;
  int64_t crc_ns = 0;  // time spent in checksum verification

  bool Read(void* data, size_t size) {
    if (remaining < static_cast<int64_t>(size)) return false;
    if (std::fread(data, 1, size, file) != size) return false;
    remaining -= static_cast<int64_t>(size);
    // Clock only the bulk payload reads: tensor data dominates CRC time and
    // clocking 4-byte header reads would cost more than it measures.
    if (size >= 4096) {
      const auto t0 = std::chrono::steady_clock::now();
      file_crc = Crc32cExtend(file_crc, data, size);
      record_crc = Crc32cExtend(record_crc, data, size);
      crc_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    } else {
      file_crc = Crc32cExtend(file_crc, data, size);
      record_crc = Crc32cExtend(record_crc, data, size);
    }
    return true;
  }

  template <typename T>
  bool ReadScalar(T* value) {
    return Read(value, sizeof(T));
  }

  /// Reads bytes that are covered by the file CRC but not the record CRC
  /// (the stored per-record checksum itself).
  bool ReadOutsideRecord(void* data, size_t size) {
    if (remaining < static_cast<int64_t>(size)) return false;
    if (std::fread(data, 1, size, file) != size) return false;
    remaining -= static_cast<int64_t>(size);
    file_crc = Crc32cExtend(file_crc, data, size);
    return true;
  }
};

StatusOr<Bundle> LoadV2Body(CrcFileReader& reader, const std::string& path) {
  uint64_t count = 0;
  if (!reader.ReadScalar(&count) || count > kMaxRecords) {
    return Status::InvalidArgument("corrupt bundle (record count)");
  }
  Bundle out;
  for (uint64_t i = 0; i < count; ++i) {
    reader.record_crc = 0;
    uint8_t kind = 0;
    uint32_t name_length = 0;
    if (!reader.ReadScalar(&kind) ||
        (kind != kTensorRecord && kind != kBlobRecord &&
         kind != kQuantRecord)) {
      return Status::InvalidArgument("corrupt bundle (record kind)");
    }
    if (!reader.ReadScalar(&name_length) || name_length > kMaxNameLength) {
      return Status::InvalidArgument("corrupt bundle (name length)");
    }
    std::string name(name_length, '\0');
    if (!reader.Read(name.data(), name_length)) {
      return Status::IOError("truncated bundle (name)");
    }
    if (kind == kTensorRecord) {
      uint32_t rank = 0;
      if (!reader.ReadScalar(&rank) ||
          rank > static_cast<uint32_t>(Shape::kMaxRank)) {
        return Status::InvalidArgument("corrupt bundle (rank)");
      }
      std::vector<int64_t> dims(rank);
      for (uint32_t d = 0; d < rank; ++d) {
        uint64_t dim = 0;
        if (!reader.ReadScalar(&dim) || dim > (1ull << 32)) {
          return Status::InvalidArgument("corrupt bundle (dimension)");
        }
        dims[d] = static_cast<int64_t>(dim);
      }
      WIDEN_ASSIGN_OR_RETURN(const int64_t total, CheckedElementCount(dims));
      if (total * static_cast<int64_t>(sizeof(float)) > reader.remaining) {
        return Status::InvalidArgument(
            StrCat("truncated bundle ('", name, "' data)"));
      }
      std::vector<float> data(static_cast<size_t>(total));
      if (!reader.Read(data.data(), data.size() * sizeof(float))) {
        return Status::IOError(StrCat("truncated bundle ('", name,
                                      "' data)"));
      }
      out.tensors.emplace_back(
          std::move(name),
          Tensor::FromVector(ShapeFromDims(dims), std::move(data)));
    } else if (kind == kQuantRecord) {
      uint8_t format = 0;
      uint64_t rows = 0, cols = 0, nscales = 0, payload_bytes = 0;
      if (!reader.ReadScalar(&format) ||
          (format != static_cast<uint8_t>(QuantFormat::kInt8Block32) &&
           format != static_cast<uint8_t>(QuantFormat::kFp16))) {
        return Status::InvalidArgument("corrupt bundle (quant format)");
      }
      if (!reader.ReadScalar(&rows) || !reader.ReadScalar(&cols) ||
          rows > (1ull << 32) || cols > (1ull << 32)) {
        return Status::InvalidArgument("corrupt bundle (quant dims)");
      }
      QuantMatrix qm;
      qm.format = static_cast<QuantFormat>(format);
      qm.rows = static_cast<int64_t>(rows);
      qm.cols = static_cast<int64_t>(cols);
      WIDEN_ASSIGN_OR_RETURN(const int64_t total,
                             CheckedElementCount({qm.rows, qm.cols}));
      const uint64_t expected_scales =
          qm.format == QuantFormat::kInt8Block32
              ? static_cast<uint64_t>(qm.rows * qm.blocks_per_row())
              : 0;
      const uint64_t expected_payload =
          qm.format == QuantFormat::kInt8Block32
              ? static_cast<uint64_t>(total)
              : static_cast<uint64_t>(total) * sizeof(uint16_t);
      if (!reader.ReadScalar(&nscales) || nscales != expected_scales ||
          static_cast<int64_t>(nscales * sizeof(float)) > reader.remaining) {
        return Status::InvalidArgument("corrupt bundle (quant scale count)");
      }
      qm.scales.resize(static_cast<size_t>(nscales));
      if (!reader.Read(qm.scales.data(), qm.scales.size() * sizeof(float))) {
        return Status::IOError(StrCat("truncated bundle ('", name,
                                      "' scales)"));
      }
      if (!reader.ReadScalar(&payload_bytes) ||
          payload_bytes != expected_payload ||
          static_cast<int64_t>(payload_bytes) > reader.remaining) {
        return Status::InvalidArgument("corrupt bundle (quant payload size)");
      }
      if (qm.format == QuantFormat::kInt8Block32) {
        qm.q.resize(static_cast<size_t>(payload_bytes));
        if (!reader.Read(qm.q.data(), qm.q.size())) {
          return Status::IOError(StrCat("truncated bundle ('", name,
                                        "' codes)"));
        }
      } else {
        qm.half.resize(static_cast<size_t>(total));
        if (!reader.Read(qm.half.data(), qm.half.size() * sizeof(uint16_t))) {
          return Status::IOError(StrCat("truncated bundle ('", name,
                                        "' halves)"));
        }
      }
      out.quants.emplace_back(std::move(name), std::move(qm));
    } else {
      uint64_t size = 0;
      if (!reader.ReadScalar(&size) || size > kMaxBlobBytes ||
          static_cast<int64_t>(size) > reader.remaining) {
        return Status::InvalidArgument("corrupt bundle (blob size)");
      }
      std::string bytes(static_cast<size_t>(size), '\0');
      if (!reader.Read(bytes.data(), bytes.size())) {
        return Status::IOError(StrCat("truncated bundle ('", name, "')"));
      }
      out.blobs.emplace_back(std::move(name), std::move(bytes));
    }
    const uint32_t computed_crc = reader.record_crc;
    uint32_t stored_crc = 0;
    if (!reader.ReadOutsideRecord(&stored_crc, sizeof(stored_crc))) {
      return Status::IOError("truncated bundle (record checksum)");
    }
    if (stored_crc != computed_crc) {
      return Status::InvalidArgument(
          StrCat("checksum mismatch in record ", i, " of '", path, "'"));
    }
  }
  // Footer: magic + record count + CRC of every byte before the footer.
  const uint32_t file_crc = reader.file_crc;
  char footer_magic[4];
  uint64_t footer_count = 0;
  uint32_t stored_file_crc = 0;
  if (!reader.ReadOutsideRecord(footer_magic, 4) ||
      std::memcmp(footer_magic, kFooterMagic, 4) != 0) {
    return Status::InvalidArgument("truncated bundle (missing footer)");
  }
  if (!reader.ReadOutsideRecord(&footer_count, sizeof(footer_count)) ||
      footer_count != count) {
    return Status::InvalidArgument("corrupt bundle (footer record count)");
  }
  if (!reader.ReadOutsideRecord(&stored_file_crc, sizeof(stored_file_crc)) ||
      stored_file_crc != file_crc) {
    return Status::InvalidArgument(
        StrCat("whole-file checksum mismatch in '", path, "'"));
  }
  if (reader.remaining != 0 || std::fgetc(reader.file) != EOF) {
    return Status::InvalidArgument("corrupt bundle (trailing bytes)");
  }
  return out;
}

StatusOr<Bundle> LoadV1Body(std::FILE* file, int64_t remaining) {
  uint64_t count = 0;
  if (!ReadScalar(file, &count) || count > kMaxRecords) {
    return Status::InvalidArgument("corrupt bundle (tensor count)");
  }
  remaining -= static_cast<int64_t>(sizeof(count));
  Bundle out;
  out.tensors.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_length = 0;
    if (!ReadScalar(file, &name_length) || name_length > kMaxNameLength) {
      return Status::InvalidArgument("corrupt bundle (name length)");
    }
    std::string name(name_length, '\0');
    if (std::fread(name.data(), 1, name_length, file) != name_length) {
      return Status::IOError("truncated bundle (name)");
    }
    uint32_t rank = 0;
    if (!ReadScalar(file, &rank) ||
        rank > static_cast<uint32_t>(Shape::kMaxRank)) {
      return Status::InvalidArgument("corrupt bundle (rank)");
    }
    remaining -= static_cast<int64_t>(sizeof(name_length)) + name_length +
                 static_cast<int64_t>(sizeof(rank));
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadScalar(file, &dim) || dim > (1ull << 32)) {
        return Status::InvalidArgument("corrupt bundle (dimension)");
      }
      dims[d] = static_cast<int64_t>(dim);
      remaining -= static_cast<int64_t>(sizeof(dim));
    }
    WIDEN_ASSIGN_OR_RETURN(const int64_t total, CheckedElementCount(dims));
    if (total * static_cast<int64_t>(sizeof(float)) > remaining) {
      return Status::InvalidArgument(
          StrCat("truncated bundle ('", name, "' data)"));
    }
    std::vector<float> data(static_cast<size_t>(total));
    if (std::fread(data.data(), sizeof(float), data.size(), file) !=
        data.size()) {
      return Status::IOError(StrCat("truncated bundle ('", name, "' data)"));
    }
    remaining -= total * static_cast<int64_t>(sizeof(float));
    out.tensors.emplace_back(
        std::move(name),
        Tensor::FromVector(ShapeFromDims(dims), std::move(data)));
  }
  return out;
}

}  // namespace

Status SaveBundle(const std::string& path, const Bundle& bundle) {
  WIDEN_METRIC_HISTOGRAM(save_us, "widen_ckpt_save_us",
                         "Wall time per bundle save (microseconds)");
  WIDEN_METRIC_COUNTER(bytes_written, "widen_ckpt_bytes_written_total",
                       "Bytes written to checkpoint bundles");
  obs::ScopedLatencyTimer timer(save_us);
  WIDEN_RETURN_IF_ERROR(ValidateNames(bundle));
  WIDEN_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Open(path));
  CrcFileWriter writer{file.stream()};
  const uint64_t record_count =
      bundle.tensors.size() + bundle.blobs.size() + bundle.quants.size();
  writer.Write(kMagic, 4);
  writer.WriteScalar<uint32_t>(bundle.quants.empty() ? kVersion
                                                     : kVersionQuant);
  writer.WriteScalar<uint64_t>(record_count);

  std::string record;
  auto flush_record = [&writer, &record]() {
    writer.Write(record.data(), record.size());
    writer.WriteScalar<uint32_t>(Crc32c(record.data(), record.size()));
  };
  for (const auto& [name, tensor] : bundle.tensors) {
    record.clear();
    ByteWriter encoder(&record);
    EncodeRecordHeader(encoder, kTensorRecord, name);
    encoder.WriteScalar<uint32_t>(static_cast<uint32_t>(tensor.shape().rank()));
    for (int i = 0; i < tensor.shape().rank(); ++i) {
      encoder.WriteScalar<uint64_t>(
          static_cast<uint64_t>(tensor.shape().dim(i)));
    }
    encoder.WriteBytes(tensor.data(),
                       static_cast<size_t>(tensor.size()) * sizeof(float));
    flush_record();
  }
  for (const auto& [name, bytes] : bundle.blobs) {
    record.clear();
    ByteWriter encoder(&record);
    EncodeRecordHeader(encoder, kBlobRecord, name);
    encoder.WriteScalar<uint64_t>(bytes.size());
    encoder.WriteBytes(bytes.data(), bytes.size());
    flush_record();
  }
  for (const auto& [name, qm] : bundle.quants) {
    record.clear();
    ByteWriter encoder(&record);
    EncodeRecordHeader(encoder, kQuantRecord, name);
    encoder.WriteScalar<uint8_t>(static_cast<uint8_t>(qm.format));
    encoder.WriteScalar<uint64_t>(static_cast<uint64_t>(qm.rows));
    encoder.WriteScalar<uint64_t>(static_cast<uint64_t>(qm.cols));
    encoder.WriteScalar<uint64_t>(qm.scales.size());
    encoder.WriteBytes(qm.scales.data(), qm.scales.size() * sizeof(float));
    if (qm.format == QuantFormat::kInt8Block32) {
      encoder.WriteScalar<uint64_t>(qm.q.size());
      encoder.WriteBytes(qm.q.data(), qm.q.size());
    } else {
      encoder.WriteScalar<uint64_t>(qm.half.size() * sizeof(uint16_t));
      encoder.WriteBytes(qm.half.data(), qm.half.size() * sizeof(uint16_t));
    }
    flush_record();
  }

  const uint32_t file_crc = writer.file_crc;  // footer excludes itself
  writer.Write(kFooterMagic, 4);
  writer.WriteScalar<uint64_t>(record_count);
  writer.WriteScalar<uint32_t>(file_crc);
  if (!writer.ok) {
    return Status::IOError(StrCat("write to '", path, "' failed"));
  }
  WIDEN_RETURN_IF_ERROR(file.Commit());
  bytes_written->Add(writer.bytes_written);
  return Status::OK();
}

StatusOr<Bundle> LoadBundle(const std::string& path) {
  WIDEN_METRIC_HISTOGRAM(load_us, "widen_ckpt_load_us",
                         "Wall time per bundle load (microseconds)");
  WIDEN_METRIC_COUNTER(bytes_read, "widen_ckpt_bytes_read_total",
                       "Bytes read from checkpoint bundles");
  WIDEN_METRIC_COUNTER(crc_verify_us, "widen_ckpt_crc_verify_us_total",
                       "Time spent verifying checkpoint CRCs on bulk reads "
                       "(microseconds)");
  obs::ScopedLatencyTimer timer(load_us);
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError(StrCat("cannot open '", path, "'"));
  }
  // Total size up front: length fields are validated against the bytes that
  // are actually present before anything is allocated.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return Status::IOError(StrCat("cannot seek '", path, "'"));
  }
  const int64_t file_size = static_cast<int64_t>(std::ftell(file.get()));
  if (file_size < 0 || std::fseek(file.get(), 0, SEEK_SET) != 0) {
    return Status::IOError(StrCat("cannot seek '", path, "'"));
  }

  CrcFileReader reader{file.get(), file_size};
  char magic[4];
  uint32_t version = 0;
  if (!reader.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(StrCat("'", path, "' is not a WIDEN "
                                          "tensor bundle"));
  }
  if (!reader.ReadScalar(&version)) {
    return Status::InvalidArgument("truncated bundle (version)");
  }
  if (version == kVersionLegacy) {
    StatusOr<Bundle> bundle = LoadV1Body(file.get(), reader.remaining);
    if (bundle.ok()) bytes_read->Add(file_size);
    return bundle;
  }
  if (version != kVersion && version != kVersionQuant) {
    return Status::InvalidArgument(
        StrCat("unsupported bundle version ", version));
  }
  StatusOr<Bundle> bundle = LoadV2Body(reader, path);
  if (bundle.ok()) {
    bytes_read->Add(file_size);
    crc_verify_us->Add(reader.crc_ns / 1000);
    // Re-attach quant sidecars to the tensors that share their name.
    for (const auto& [qname, qm] : bundle->quants) {
      for (auto& [tname, t] : bundle->tensors) {
        if (tname == qname && t.shape().rank() == 2 &&
            t.rows() == qm.rows && t.cols() == qm.cols) {
          AttachQuant(t, qm);
        }
      }
    }
  }
  return bundle;
}

Status SaveTensors(const std::string& path, const NamedTensors& tensors) {
  Bundle bundle;
  bundle.tensors = tensors;
  return SaveBundle(path, bundle);
}

StatusOr<NamedTensors> LoadTensors(const std::string& path) {
  WIDEN_ASSIGN_OR_RETURN(Bundle bundle, LoadBundle(path));
  return std::move(bundle.tensors);
}

Status CopyInto(const Tensor& source, Tensor& target) {
  if (!source.defined() || !target.defined()) {
    return Status::InvalidArgument("CopyInto on null tensor");
  }
  if (source.shape() != target.shape()) {
    return Status::InvalidArgument(
        StrCat("shape mismatch: ", source.shape().ToString(), " vs ",
               target.shape().ToString()));
  }
  std::memcpy(target.mutable_data(), source.data(),
              static_cast<size_t>(source.size()) * sizeof(float));
  return Status::OK();
}

StatusOr<Tensor> FindTensor(const NamedTensors& tensors,
                            const std::string& name) {
  for (const auto& [candidate, tensor] : tensors) {
    if (candidate == name) return tensor;
  }
  return Status::NotFound(StrCat("tensor '", name, "' not in bundle"));
}

}  // namespace widen::tensor
