#include "tensor/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "util/string_util.h"

namespace widen::tensor {
namespace {

constexpr char kMagic[4] = {'W', 'D', 'N', 'T'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* file, T value) {
  return std::fwrite(&value, sizeof(T), 1, file) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* file, T* value) {
  return std::fread(value, sizeof(T), 1, file) == 1;
}

}  // namespace

Status SaveTensors(const std::string& path, const NamedTensors& tensors) {
  std::set<std::string> names;
  for (const auto& [name, tensor] : tensors) {
    if (name.empty()) {
      return Status::InvalidArgument("tensor name must not be empty");
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument(StrCat("duplicate tensor name '", name,
                                            "'"));
    }
    if (!tensor.defined()) {
      return Status::InvalidArgument(StrCat("tensor '", name, "' is null"));
    }
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  if (std::fwrite(kMagic, 1, 4, file.get()) != 4 ||
      !WriteScalar(file.get(), kVersion) ||
      !WriteScalar(file.get(), static_cast<uint64_t>(tensors.size()))) {
    return Status::IOError("write failed (header)");
  }
  for (const auto& [name, tensor] : tensors) {
    if (!WriteScalar(file.get(), static_cast<uint32_t>(name.size())) ||
        std::fwrite(name.data(), 1, name.size(), file.get()) != name.size() ||
        !WriteScalar(file.get(),
                     static_cast<uint32_t>(tensor.shape().rank()))) {
      return Status::IOError(StrCat("write failed ('", name, "' header)"));
    }
    for (int i = 0; i < tensor.shape().rank(); ++i) {
      if (!WriteScalar(file.get(),
                       static_cast<uint64_t>(tensor.shape().dim(i)))) {
        return Status::IOError(StrCat("write failed ('", name, "' dims)"));
      }
    }
    const size_t count = static_cast<size_t>(tensor.size());
    if (std::fwrite(tensor.data(), sizeof(float), count, file.get()) !=
        count) {
      return Status::IOError(StrCat("write failed ('", name, "' data)"));
    }
  }
  return Status::OK();
}

StatusOr<NamedTensors> LoadTensors(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError(StrCat("cannot open '", path, "'"));
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, file.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(StrCat("'", path, "' is not a WIDEN "
                                          "tensor bundle"));
  }
  if (!ReadScalar(file.get(), &version) || version != kVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported bundle version ", version));
  }
  if (!ReadScalar(file.get(), &count) || count > (1ull << 20)) {
    return Status::InvalidArgument("corrupt bundle (tensor count)");
  }
  NamedTensors out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_length = 0;
    if (!ReadScalar(file.get(), &name_length) || name_length > 4096) {
      return Status::InvalidArgument("corrupt bundle (name length)");
    }
    std::string name(name_length, '\0');
    if (std::fread(name.data(), 1, name_length, file.get()) != name_length) {
      return Status::IOError("truncated bundle (name)");
    }
    uint32_t rank = 0;
    if (!ReadScalar(file.get(), &rank) ||
        rank > static_cast<uint32_t>(Shape::kMaxRank)) {
      return Status::InvalidArgument("corrupt bundle (rank)");
    }
    std::vector<int64_t> dims(rank);
    int64_t total = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadScalar(file.get(), &dim) || dim > (1ull << 32)) {
        return Status::InvalidArgument("corrupt bundle (dimension)");
      }
      dims[d] = static_cast<int64_t>(dim);
      total *= dims[d];
    }
    Shape shape;
    if (rank == 0) {
      shape = Shape{};
    } else if (rank == 1) {
      shape = Shape{dims[0]};
    } else if (rank == 2) {
      shape = Shape{dims[0], dims[1]};
    } else if (rank == 3) {
      shape = Shape{dims[0], dims[1], dims[2]};
    } else {
      shape = Shape{dims[0], dims[1], dims[2], dims[3]};
    }
    std::vector<float> data(static_cast<size_t>(total));
    if (std::fread(data.data(), sizeof(float), data.size(), file.get()) !=
        data.size()) {
      return Status::IOError(StrCat("truncated bundle ('", name, "' data)"));
    }
    out.emplace_back(std::move(name),
                     Tensor::FromVector(shape, std::move(data)));
  }
  return out;
}

Status CopyInto(const Tensor& source, Tensor& target) {
  if (!source.defined() || !target.defined()) {
    return Status::InvalidArgument("CopyInto on null tensor");
  }
  if (source.shape() != target.shape()) {
    return Status::InvalidArgument(
        StrCat("shape mismatch: ", source.shape().ToString(), " vs ",
               target.shape().ToString()));
  }
  std::memcpy(target.mutable_data(), source.data(),
              static_cast<size_t>(source.size()) * sizeof(float));
  return Status::OK();
}

StatusOr<Tensor> FindTensor(const NamedTensors& tensors,
                            const std::string& name) {
  for (const auto& [candidate, tensor] : tensors) {
    if (candidate == name) return tensor;
  }
  return Status::NotFound(StrCat("tensor '", name, "' not in bundle"));
}

}  // namespace widen::tensor
