// Process-wide execution context for the parallel tensor kernels.
//
// Every hot op in tensor/ops.cc routes its loops through ParallelForGrid,
// which partitions the iteration space into a FIXED chunk grid that depends
// only on the problem size — never on the thread count. Each chunk owns a
// disjoint slice of the output, so the kernels produce bitwise-identical
// results for any WIDEN_NUM_THREADS (the full contract is documented in
// DESIGN.md §8 "Parallel kernel execution").
//
// Thread count resolution, in priority order:
//   1. KernelContext::Get().SetNumThreads(n) with n >= 1 (config / CLI knob);
//   2. the WIDEN_NUM_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
// A count of 1 runs every kernel serially on the calling thread (no pool is
// created at all), preserving the legacy single-threaded execution exactly.

#ifndef WIDEN_TENSOR_KERNEL_CONTEXT_H_
#define WIDEN_TENSOR_KERNEL_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "util/threadpool.h"

namespace widen::tensor {

/// Lazily-initialized singleton owning the kernel thread pool.
class KernelContext {
 public:
  /// The process-wide context; the first call resolves the thread count.
  static KernelContext& Get();

  /// Current kernel thread count (>= 1).
  int num_threads() const;

  /// Resizes the pool. n >= 1 sets the count directly; n == 0 re-resolves
  /// from WIDEN_NUM_THREADS / hardware concurrency. Not safe to call while
  /// kernels are in flight on other threads — call it between training
  /// steps (the trainer and CLI do this once at startup).
  void SetNumThreads(int n);

  /// The pool, or nullptr when running serially (num_threads() == 1).
  ThreadPool* pool() const { return pool_.get(); }

  KernelContext(const KernelContext&) = delete;
  KernelContext& operator=(const KernelContext&) = delete;

 private:
  KernelContext();

  mutable std::mutex mu_;
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
};

// Fixed chunk sizes of the determinism grid. Kernels pick the unit that
// matches their iteration space; the values balance scheduling overhead
// against load balance and are part of the determinism contract (changing
// them changes which rows share a chunk, though results stay bitwise
// identical anyway because chunks never share output elements).
inline constexpr int64_t kRowGrain = 16;      // matrix rows per chunk
inline constexpr int64_t kElementGrain = 4096;  // flat elements per chunk

/// Runs body(lo, hi) over a fixed partition of [0, n) into ceil(n / grain)
/// chunks. The grid depends only on (n, grain); with one thread (or one
/// chunk) the chunks execute in ascending order on the calling thread, so
/// results are bitwise identical for every thread count provided chunks
/// write disjoint outputs.
void ParallelForGrid(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_KERNEL_CONTEXT_H_
