#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd/half.h"
#include "util/logging.h"

namespace widen::tensor {

const char* QuantFormatName(QuantFormat format) {
  switch (format) {
    case QuantFormat::kNone: return "none";
    case QuantFormat::kInt8Block32: return "int8";
    case QuantFormat::kFp16: return "fp16";
  }
  return "unknown";
}

bool ParseQuantFormat(const std::string& name, QuantFormat* format) {
  if (name == "none" || name.empty()) {
    *format = QuantFormat::kNone;
  } else if (name == "int8") {
    *format = QuantFormat::kInt8Block32;
  } else if (name == "fp16") {
    *format = QuantFormat::kFp16;
  } else {
    return false;
  }
  return true;
}

int64_t QuantMatrix::PayloadBytes() const {
  switch (format) {
    case QuantFormat::kNone:
      return 0;
    case QuantFormat::kInt8Block32:
      return static_cast<int64_t>(q.size()) +
             static_cast<int64_t>(scales.size() * sizeof(float));
    case QuantFormat::kFp16:
      return static_cast<int64_t>(half.size() * sizeof(uint16_t));
  }
  return 0;
}

QuantMatrix QuantizeMatrix(const Tensor& t, QuantFormat format) {
  WIDEN_CHECK(format != QuantFormat::kNone) << "QuantizeMatrix(kNone)";
  WIDEN_CHECK_EQ(t.shape().rank(), 2) << "quantization is matrix-only";
  QuantMatrix qm;
  qm.format = format;
  qm.rows = t.rows();
  qm.cols = t.cols();
  const float* data = t.data();
  const int64_t total = qm.rows * qm.cols;
  if (format == QuantFormat::kFp16) {
    qm.half.resize(static_cast<size_t>(total));
    for (int64_t i = 0; i < total; ++i) {
      qm.half[static_cast<size_t>(i)] = simd::FloatToHalf(data[i]);
    }
    return qm;
  }
  const int64_t nb = qm.blocks_per_row();
  qm.q.resize(static_cast<size_t>(total));
  qm.scales.resize(static_cast<size_t>(qm.rows * nb));
  for (int64_t r = 0; r < qm.rows; ++r) {
    const float* row = data + r * qm.cols;
    int8_t* qrow = qm.q.data() + r * qm.cols;
    float* srow = qm.scales.data() + r * nb;
    for (int64_t b0 = 0; b0 < qm.cols; b0 += kQuantBlock) {
      const int64_t b1 = std::min(qm.cols, b0 + kQuantBlock);
      float amax = 0.0f;
      for (int64_t j = b0; j < b1; ++j) {
        amax = std::max(amax, std::fabs(row[j]));
      }
      // scale = max|w|/127 so codes span the full int8 range; an all-zero
      // block stores scale 0 and decodes to exact zeros.
      const float scale = amax / 127.0f;
      srow[b0 / kQuantBlock] = scale;
      const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
      for (int64_t j = b0; j < b1; ++j) {
        const float v = std::nearbyint(row[j] * inv);
        qrow[j] = static_cast<int8_t>(
            std::clamp(v, -127.0f, 127.0f));
      }
    }
  }
  return qm;
}

Tensor DequantizeMatrix(const QuantMatrix& qm) {
  WIDEN_CHECK(qm.format != QuantFormat::kNone);
  Tensor out(Shape::Matrix(qm.rows, qm.cols));
  float* po = out.mutable_data();
  const int64_t total = qm.rows * qm.cols;
  if (qm.format == QuantFormat::kFp16) {
    WIDEN_CHECK_EQ(static_cast<int64_t>(qm.half.size()), total);
    for (int64_t i = 0; i < total; ++i) {
      po[i] = simd::HalfToFloat(qm.half[static_cast<size_t>(i)]);
    }
    return out;
  }
  WIDEN_CHECK_EQ(static_cast<int64_t>(qm.q.size()), total);
  WIDEN_CHECK_EQ(static_cast<int64_t>(qm.scales.size()),
                 qm.rows * qm.blocks_per_row());
  const int64_t nb = qm.blocks_per_row();
  for (int64_t r = 0; r < qm.rows; ++r) {
    const int8_t* qrow = qm.q.data() + r * qm.cols;
    const float* srow = qm.scales.data() + r * nb;
    float* orow = po + r * qm.cols;
    for (int64_t j = 0; j < qm.cols; ++j) {
      orow[j] = srow[j / kQuantBlock] * static_cast<float>(qrow[j]);
    }
  }
  return out;
}

void AttachQuant(Tensor& t, QuantMatrix qm) {
  if (qm.format == QuantFormat::kNone) {
    t.impl_ptr()->quant.reset();
    return;
  }
  WIDEN_CHECK(t.shape().rank() == 2 && t.rows() == qm.rows &&
              t.cols() == qm.cols)
      << "quant sidecar shape " << qm.rows << "x" << qm.cols
      << " vs tensor " << t.shape().ToString();
  t.impl_ptr()->quant = std::make_shared<QuantMatrix>(std::move(qm));
}

const QuantMatrix* GetQuant(const Tensor& t) {
  return t.impl_ptr()->quant.get();
}

}  // namespace widen::tensor
