// Block-quantized weight storage for serving (DESIGN.md §13).
//
// A QuantMatrix is a compressed, read-only mirror of one fp32 weight matrix,
// attached to the Tensor as a sidecar (TensorImpl::quant). The fp32 data
// stays in place — training, checkpoint saving, and any op other than the
// inference-mode MatMul keep reading the exact weights — while the
// inference-mode MatMul streams the compressed bytes through the fused
// dequant-dot kernels in tensor/simd/.
//
// Formats (cols-direction layout, matching the MatMul B-operand access
// pattern where row kk is streamed contiguously in j):
//
//   kInt8Block32 — ggml-Q8_0-style symmetric int8. Each weight row is split
//     into ceil(cols/32) blocks of 32 consecutive columns; each block stores
//     one fp32 scale = max|w|/127 and 32 int8 codes q = round(w/scale), so
//     w' = q * scale. Byte layout: q[rows*cols] int8 row-major +
//     scales[rows * ceil(cols/32)] fp32 row-major — 1.125 bytes/weight at
//     block 32 vs 4 fp32.
//   kFp16 — IEEE binary16, one uint16 per weight (round-to-nearest-even
//     encode, exact decode) — 2 bytes/weight.
//
// Quantization happens once at checkpoint-load time (serve::InferenceSession
// with SessionOptions::weight_quant set); the sidecar is only consulted by
// MatMul when no gradient is required, so the serving default (kNone)
// remains bitwise-identical to training-side forwards.

#ifndef WIDEN_TENSOR_QUANT_H_
#define WIDEN_TENSOR_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace widen::tensor {

enum class QuantFormat : uint8_t {
  kNone = 0,
  kInt8Block32 = 1,
  kFp16 = 2,
};

const char* QuantFormatName(QuantFormat format);
/// Parses "none" | "int8" | "fp16" (the CLI/session spelling). Returns
/// false on an unknown name.
bool ParseQuantFormat(const std::string& name, QuantFormat* format);

/// Columns per int8 scale block.
inline constexpr int64_t kQuantBlock = 32;

struct QuantMatrix {
  QuantFormat format = QuantFormat::kNone;
  int64_t rows = 0;
  int64_t cols = 0;
  // kInt8Block32: rows*cols codes + rows*blocks_per_row() scales.
  std::vector<int8_t> q;
  std::vector<float> scales;
  // kFp16: rows*cols halves.
  std::vector<uint16_t> half;

  int64_t blocks_per_row() const {
    return (cols + kQuantBlock - 1) / kQuantBlock;
  }
  /// Compressed payload size (what a cold encode streams instead of
  /// 4*rows*cols fp32 bytes).
  int64_t PayloadBytes() const;
};

/// Compresses a rank-2 tensor. `format` must not be kNone.
QuantMatrix QuantizeMatrix(const Tensor& t, QuantFormat format);

/// Expands a QuantMatrix back to fp32 (w' values, not the original w).
Tensor DequantizeMatrix(const QuantMatrix& qm);

/// Attaches `qm` as `t`'s sidecar (shape must match). The inference-mode
/// MatMul picks it up; detach by attaching a kNone-format default.
void AttachQuant(Tensor& t, QuantMatrix qm);

/// The sidecar attached to `t`, or nullptr.
const QuantMatrix* GetQuant(const Tensor& t);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_QUANT_H_
