// Differentiable tensor operations.
//
// Every function builds one node on the autograd tape when any operand
// requires gradients; otherwise it computes the value only. Shapes are
// validated with WIDEN_CHECK (shape errors are programmer errors).
//
// Broadcasting is intentionally narrow: Add/Mul accept either equal shapes or
// a [1, n] row vector against an [m, n] matrix — the only patterns the models
// need — so silent shape bugs cannot hide behind NumPy-style broadcasting.

#ifndef WIDEN_TENSOR_OPS_H_
#define WIDEN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace widen::tensor {

// ---- Linear algebra ------------------------------------------------------

/// Matrix product: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Matrix transpose: [m,n] -> [n,m].
Tensor Transpose(const Tensor& a);

// ---- Elementwise arithmetic ----------------------------------------------

/// a + b. Shapes must match, or b may be [1,n] broadcast over a's [m,n] rows.
Tensor Add(const Tensor& a, const Tensor& b);

/// a - b (same shape rules as Add).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Hadamard product (same shape rules as Add).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * c for scalar constant c.
Tensor Scale(const Tensor& a, float c);

/// a + c for scalar constant c.
Tensor AddScalar(const Tensor& a, float c);

/// Elementwise max(a, b); gradient flows to the selected operand (ties -> a).
Tensor Maximum(const Tensor& a, const Tensor& b);

// ---- Nonlinearities --------------------------------------------------------

Tensor Relu(const Tensor& a);
/// max(x, slope * x); GAT's attention nonlinearity.
Tensor LeakyRelu(const Tensor& a, float slope = 0.2f);
/// x >= 0 ? x : alpha * (exp(x) - 1).
Tensor Elu(const Tensor& a, float alpha = 1.0f);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped below at 1e-12 for stability.
Tensor Log(const Tensor& a);

// ---- Softmax / losses ------------------------------------------------------

/// Row-wise numerically stable softmax of an [m,n] matrix.
Tensor SoftmaxRows(const Tensor& a);

/// Fused SoftmaxRows(a + mask) for a constant additive mask (e.g.
/// CausalAttentionMask). Identical bits to the two-op composite without
/// materializing the masked scores; no gradient flows to the mask.
Tensor MaskedSoftmaxRows(const Tensor& a, const Tensor& mask);

/// Mean cross-entropy of logits [m,c] against integer labels (size m).
/// Optional per-sample weights (e.g. 0/1 label masks); mean is taken over the
/// total weight. Returns a scalar.
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<float>* sample_weights = nullptr);

/// Sum of squared entries (for L2 regularization). Returns a scalar.
Tensor SumSquares(const Tensor& a);

// ---- Shape surgery ---------------------------------------------------------

/// Vertically stacks matrices with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Horizontally concatenates matrices with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Rows [start, start+count) of a as a new [count, n] tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t count);

/// Columns [start, start+count) of a as a new [m, count] tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t count);

/// a * s for a single-element differentiable scalar tensor s (GTN's soft
/// edge-type selection weights flow gradients through this).
Tensor ScaleBy(const Tensor& a, const Tensor& scalar);

/// Selects rows of a by index (duplicates allowed); the embedding-lookup
/// primitive. Backward scatter-adds into a.
Tensor GatherRows(const Tensor& a, const std::vector<int32_t>& indices);

// ---- Reductions -------------------------------------------------------------

/// Column sums: [m,n] -> [1,n].
Tensor SumRows(const Tensor& a);
/// Column means: [m,n] -> [1,n].
Tensor MeanRows(const Tensor& a);
/// Sum of all entries -> scalar.
Tensor SumAll(const Tensor& a);
/// Mean of all entries -> scalar.
Tensor MeanAll(const Tensor& a);

// ---- Normalization / regularization -----------------------------------------

/// Divides each row by its L2 norm (clamped at 1e-12). Paper Eq. (7).
Tensor RowL2Normalize(const Tensor& a);

/// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training);

// ---- Non-differentiable helpers ---------------------------------------------

/// Index of the max entry in each row (prediction extraction).
std::vector<int32_t> ArgMaxRows(const Tensor& a);

/// A [rows, rows] additive attention mask with 0 where row <= col and
/// `fill` elsewhere (paper Eq. (6); fill defaults to -1e9 standing in for
/// -inf). Not differentiable.
Tensor CausalAttentionMask(int64_t rows, float fill = -1e9f);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_OPS_H_
