// Binary serialization of tensors and named parameter bundles.
//
// Format (little-endian, versioned):
//   file   := MAGIC("WDNT") u32-version u64-count entry*
//   entry  := u32-name-length name-bytes u32-rank u64-dim* f32-data*
//
// Used to checkpoint trained models (core::SaveWidenModel) and to export
// embeddings. Floats are written raw; the format is not portable to
// big-endian machines (none are targeted).

#ifndef WIDEN_TENSOR_SERIALIZE_H_
#define WIDEN_TENSOR_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace widen::tensor {

/// An ordered list of (name, tensor) pairs.
using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

/// Writes `tensors` to `path`, overwriting. Names must be unique and
/// non-empty.
Status SaveTensors(const std::string& path, const NamedTensors& tensors);

/// Reads a bundle previously written by SaveTensors. Loaded tensors do not
/// require grad.
StatusOr<NamedTensors> LoadTensors(const std::string& path);

/// Copies values from `source` into `target` IN PLACE (shapes must match).
/// Used to restore checkpoints into live parameter tensors without
/// re-wiring optimizers.
Status CopyInto(const Tensor& source, Tensor& target);

/// Convenience: finds `name` in a loaded bundle; NotFound otherwise.
StatusOr<Tensor> FindTensor(const NamedTensors& tensors,
                            const std::string& name);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_SERIALIZE_H_
