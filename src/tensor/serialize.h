// Binary serialization of tensors and named parameter bundles.
//
// Format v2 (little-endian, checksummed, crash-safe):
//   file   := MAGIC("WDNT") u32-version(2) u64-count record* footer
//   record := u8-kind u32-name-length name-bytes body u32-crc32c
//   body   := tensor: u32-rank u64-dim* f32-data*        (kind 0)
//           | blob:   u64-size raw-bytes                 (kind 1)
//   footer := MAGIC("WDNF") u64-count u32-file-crc32c
//
// Each record's CRC32C covers its bytes from the kind tag through the body;
// the footer CRC covers every byte before the footer, so truncation anywhere
// and any single flipped byte are detected at load time. Files are written
// through the atomic temp-file + fsync + rename protocol (util/file_util.h):
// a crash mid-save leaves the previous bundle intact.
//
// Version 1 files (no checksums, no footer) written by earlier releases
// remain loadable. Floats are written raw; the format is not portable to
// big-endian machines (none are targeted).

#ifndef WIDEN_TENSOR_SERIALIZE_H_
#define WIDEN_TENSOR_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace widen::tensor {

/// An ordered list of (name, tensor) pairs.
using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

/// An ordered list of (name, raw bytes) pairs for non-tensor state.
using NamedBlobs = std::vector<std::pair<std::string, std::string>>;

/// A checkpoint bundle: float tensors plus opaque byte records (optimizer /
/// RNG / sampler state). Names must be unique across both lists.
struct Bundle {
  NamedTensors tensors;
  NamedBlobs blobs;
};

/// Atomically writes `bundle` to `path` in format v2. Names must be unique
/// and non-empty; tensors must be non-null.
Status SaveBundle(const std::string& path, const Bundle& bundle);

/// Reads a v1 or v2 bundle, verifying all checksums (v2). Any truncation or
/// corruption yields a non-OK Status; nothing is ever partially returned.
StatusOr<Bundle> LoadBundle(const std::string& path);

/// Writes `tensors` to `path` (v2, atomic). Names must be unique and
/// non-empty.
Status SaveTensors(const std::string& path, const NamedTensors& tensors);

/// Reads the tensor records of a bundle previously written by SaveTensors or
/// SaveBundle (blob records are ignored). Loaded tensors do not require
/// grad.
StatusOr<NamedTensors> LoadTensors(const std::string& path);

/// Copies values from `source` into `target` IN PLACE (shapes must match).
/// Used to restore checkpoints into live parameter tensors without
/// re-wiring optimizers.
Status CopyInto(const Tensor& source, Tensor& target);

/// Convenience: finds `name` in a loaded bundle; NotFound otherwise.
StatusOr<Tensor> FindTensor(const NamedTensors& tensors,
                            const std::string& name);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_SERIALIZE_H_
