// Binary serialization of tensors and named parameter bundles.
//
// Format v2/v3 (little-endian, checksummed, crash-safe):
//   file   := MAGIC("WDNT") u32-version u64-count record* footer
//   record := u8-kind u32-name-length name-bytes body u32-crc32c
//   body   := tensor: u32-rank u64-dim* f32-data*        (kind 0)
//           | blob:   u64-size raw-bytes                 (kind 1)
//           | quant:  u8-format u64-rows u64-cols        (kind 2)
//                     u64-nscales f32-scale*
//                     u64-payload-bytes raw-bytes
//   footer := MAGIC("WDNF") u64-count u32-file-crc32c
//
// Each record's CRC32C covers its bytes from the kind tag through the body;
// the footer CRC covers every byte before the footer, so truncation anywhere
// and any single flipped byte are detected at load time. Files are written
// through the atomic temp-file + fsync + rename protocol (util/file_util.h):
// a crash mid-save leaves the previous bundle intact.
//
// Quant records (tensor/quant.h) carry block-quantized serving weights: the
// payload is the int8 code matrix (kInt8Block32, with the fp32 scales in the
// scale array) or the raw binary16 matrix (kFp16, nscales = 0). A quant
// record may share its name with a tensor record in the same bundle — it is
// then a sidecar of that tensor and LoadBundle re-attaches it. Files are
// written as version 3 only when at least one quant record is present, so
// bundles without them remain readable by older releases.
//
// Version 1 files (no checksums, no footer) written by earlier releases
// remain loadable. Floats are written raw; the format is not portable to
// big-endian machines (none are targeted).

#ifndef WIDEN_TENSOR_SERIALIZE_H_
#define WIDEN_TENSOR_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace widen::tensor {

/// An ordered list of (name, tensor) pairs.
using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

/// An ordered list of (name, raw bytes) pairs for non-tensor state.
using NamedBlobs = std::vector<std::pair<std::string, std::string>>;

/// An ordered list of (name, quantized matrix) pairs.
using NamedQuants = std::vector<std::pair<std::string, QuantMatrix>>;

/// A checkpoint bundle: float tensors plus opaque byte records (optimizer /
/// RNG / sampler state) plus optional block-quantized weight records. Names
/// must be unique across tensors and blobs; a quant name must be unique
/// among quants but MAY match a tensor name (sidecar of that tensor —
/// LoadBundle re-attaches it via AttachQuant).
struct Bundle {
  NamedTensors tensors;
  NamedBlobs blobs;
  NamedQuants quants;
};

/// Atomically writes `bundle` to `path` in format v2. Names must be unique
/// and non-empty; tensors must be non-null.
Status SaveBundle(const std::string& path, const Bundle& bundle);

/// Reads a v1 or v2 bundle, verifying all checksums (v2). Any truncation or
/// corruption yields a non-OK Status; nothing is ever partially returned.
StatusOr<Bundle> LoadBundle(const std::string& path);

/// Writes `tensors` to `path` (v2, atomic). Names must be unique and
/// non-empty.
Status SaveTensors(const std::string& path, const NamedTensors& tensors);

/// Reads the tensor records of a bundle previously written by SaveTensors or
/// SaveBundle (blob records are ignored). Loaded tensors do not require
/// grad.
StatusOr<NamedTensors> LoadTensors(const std::string& path);

/// Copies values from `source` into `target` IN PLACE (shapes must match).
/// Used to restore checkpoints into live parameter tensors without
/// re-wiring optimizers.
Status CopyInto(const Tensor& source, Tensor& target);

/// Convenience: finds `name` in a loaded bundle; NotFound otherwise.
StatusOr<Tensor> FindTensor(const NamedTensors& tensors,
                            const std::string& name);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_SERIALIZE_H_
