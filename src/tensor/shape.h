// Tensor shapes. The library operates on rank-1/rank-2 tensors (row vectors
// and matrices); Shape is a small fixed-capacity dimension list with the
// usual helpers.

#ifndef WIDEN_TENSOR_SHAPE_H_
#define WIDEN_TENSOR_SHAPE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/logging.h"

namespace widen::tensor {

/// Dimensions of a tensor. Rank 0 (scalar) through 2 (matrix) are used by the
/// library; capacity allows up to rank 4 for forward compatibility.
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() : rank_(0) {}

  Shape(std::initializer_list<int64_t> dims) : rank_(0) {
    WIDEN_CHECK_LE(dims.size(), static_cast<size_t>(kMaxRank));
    for (int64_t d : dims) {
      WIDEN_CHECK_GE(d, 0);
      dims_[rank_++] = d;
    }
  }

  /// Convenience factory for the ubiquitous matrix case.
  static Shape Matrix(int64_t rows, int64_t cols) { return Shape{rows, cols}; }

  int rank() const { return rank_; }

  int64_t dim(int i) const {
    WIDEN_CHECK_GE(i, 0);
    WIDEN_CHECK_LT(i, rank_);
    return dims_[i];
  }

  /// Rows of a matrix (rank-2 only).
  int64_t rows() const {
    WIDEN_CHECK_EQ(rank_, 2);
    return dims_[0];
  }

  /// Columns of a matrix (rank-2 only).
  int64_t cols() const {
    WIDEN_CHECK_EQ(rank_, 2);
    return dims_[1];
  }

  int64_t NumElements() const {
    int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (int i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  /// "[3, 128]".
  std::string ToString() const;

 private:
  std::array<int64_t, kMaxRank> dims_{};
  int rank_;
};

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_SHAPE_H_
