#include "tensor/init.h"

#include <cmath>

namespace widen::tensor {
namespace {

// fan_in / fan_out follow the convention for row-vector activations
// (x W with W of shape [in, out]).
void FanInOut(const Shape& shape, int64_t* fan_in, int64_t* fan_out) {
  if (shape.rank() == 2) {
    *fan_in = shape.dim(0);
    *fan_out = shape.dim(1);
  } else {
    *fan_in = shape.NumElements();
    *fan_out = shape.NumElements();
  }
}

}  // namespace

Tensor XavierUniform(const Shape& shape, Rng& rng, std::string label) {
  int64_t fan_in = 0, fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(std::max<int64_t>(fan_in + fan_out, 1)));
  Tensor t(shape);
  float* p = t.mutable_data();
  for (int64_t i = 0; i < t.size(); ++i) p[i] = rng.UniformFloat(-bound, bound);
  t.set_requires_grad(true);
  t.set_label(std::move(label));
  return t;
}

Tensor HeNormal(const Shape& shape, Rng& rng, std::string label) {
  int64_t fan_in = 0, fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(std::max<int64_t>(fan_in, 1)));
  return NormalInit(shape, rng, stddev, std::move(label));
}

Tensor NormalInit(const Shape& shape, Rng& rng, float stddev,
                  std::string label) {
  Tensor t(shape);
  float* p = t.mutable_data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  t.set_requires_grad(true);
  t.set_label(std::move(label));
  return t;
}

Tensor ZeroParam(const Shape& shape, std::string label) {
  Tensor t(shape);
  t.set_requires_grad(true);
  t.set_label(std::move(label));
  return t;
}

}  // namespace widen::tensor
