// Reverse-mode differentiation driver.
//
// The tape is distributed: every non-leaf tensor stores its parents and a
// backward closure. Backward(loss) topologically orders the reachable
// subgraph and invokes closures in reverse order, accumulating gradients.

#ifndef WIDEN_TENSOR_AUTOGRAD_H_
#define WIDEN_TENSOR_AUTOGRAD_H_

#include "tensor/tensor.h"

namespace widen::tensor {

/// Runs backpropagation from `root`, which must be a scalar. Equivalent to
/// `root.Backward()`.
void Backward(const Tensor& root);

/// Number of autograd nodes reachable from `root` (diagnostics/tests).
size_t CountTapeNodes(const Tensor& root);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_AUTOGRAD_H_
