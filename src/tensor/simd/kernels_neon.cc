// AArch64 NEON kernel table. NEON is baseline on AArch64, so no extra
// compile flags are needed; -ffp-contract=off is still applied to this TU so
// fused multiply-adds appear only where vfmaq is written explicitly and the
// lanewise kernels keep plain IEEE mul+add semantics (bitwise-identical to
// the scalar table). Kernels without a profitable NEON form (softmax, the
// quantized fused dots, double-precision sum-of-squares) alias the scalar
// implementations via table inheritance.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstdint>

#include "tensor/simd/simd.h"

namespace widen::tensor::simd {
namespace {

void MatMulRow(const float* arow, const float* b, float* orow, int64_t k,
               int64_t n) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    float32x4_t a0 = vld1q_f32(orow + j);
    float32x4_t a1 = vld1q_f32(orow + j + 4);
    float32x4_t a2 = vld1q_f32(orow + j + 8);
    float32x4_t a3 = vld1q_f32(orow + j + 12);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + kk * n + j;
      a0 = vfmaq_n_f32(a0, vld1q_f32(brow), av);
      a1 = vfmaq_n_f32(a1, vld1q_f32(brow + 4), av);
      a2 = vfmaq_n_f32(a2, vld1q_f32(brow + 8), av);
      a3 = vfmaq_n_f32(a3, vld1q_f32(brow + 12), av);
    }
    vst1q_f32(orow + j, a0);
    vst1q_f32(orow + j + 4, a1);
    vst1q_f32(orow + j + 8, a2);
    vst1q_f32(orow + j + 12, a3);
  }
  for (; j + 4 <= n; j += 4) {
    float32x4_t a0 = vld1q_f32(orow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      a0 = vfmaq_n_f32(a0, vld1q_f32(b + kk * n + j), arow[kk]);
    }
    vst1q_f32(orow + j, a0);
  }
  for (; j < n; ++j) {
    float acc = orow[j];
    for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j];
    orow[j] = acc;
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + j), vld1q_f32(b + j));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + j + 4), vld1q_f32(b + j + 4));
  }
  for (; j + 4 <= n; j += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + j), vld1q_f32(b + j));
  }
  float r = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; j < n; ++j) r += a[j] * b[j];
  return r;
}

void Axpy(float a, const float* x, float* y, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f32(y + j, vfmaq_n_f32(vld1q_f32(y + j), vld1q_f32(x + j), a));
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

void Add(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(o + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(o + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(o + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleK(const float* a, float c, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(o + i, vmulq_n_f32(vld1q_f32(a + i), c));
  }
  for (; i < n; ++i) o[i] = a[i] * c;
}

void Acc(const float* g, float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(d + i, vaddq_f32(vld1q_f32(d + i), vld1q_f32(g + i)));
  }
  for (; i < n; ++i) d[i] += g[i];
}

void AccScaled(const float* g, float s, float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // mul then add (no vfma): bitwise-matches scalar d[i] += s * g[i].
    vst1q_f32(d + i, vaddq_f32(vld1q_f32(d + i),
                               vmulq_n_f32(vld1q_f32(g + i), s)));
  }
  for (; i < n; ++i) d[i] += s * g[i];
}

void MulAcc(const float* g, const float* x, float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(d + i, vaddq_f32(vld1q_f32(d + i),
                               vmulq_f32(vld1q_f32(g + i),
                                         vld1q_f32(x + i))));
  }
  for (; i < n; ++i) d[i] += g[i] * x[i];
}

void Relu(const float* x, float* o, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Compare+select instead of vmaxq: FMAX propagates NaN, the scalar
    // contract (x > 0 ? x : 0) maps NaN and -0 to +0.
    const float32x4_t xv = vld1q_f32(x + i);
    const uint32x4_t mask = vcgtq_f32(xv, zero);
    vst1q_f32(o + i, vbslq_f32(mask, xv, zero));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBwd(const float* g, const float* x, float* d, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t mask = vcgtq_f32(vld1q_f32(x + i), zero);
    const float32x4_t mult = vbslq_f32(mask, one, zero);
    vst1q_f32(d + i, vaddq_f32(vld1q_f32(d + i),
                               vmulq_f32(vld1q_f32(g + i), mult)));
  }
  for (; i < n; ++i) d[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
}

void LeakyRelu(const float* x, float slope, float* o, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const uint32x4_t mask = vcgtq_f32(xv, zero);
    vst1q_f32(o + i, vbslq_f32(mask, xv, vmulq_n_f32(xv, slope)));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void LeakyReluBwd(const float* g, const float* x, float slope, float* d,
                  int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t sv = vdupq_n_f32(slope);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t mask = vcgtq_f32(vld1q_f32(x + i), zero);
    const float32x4_t mult = vbslq_f32(mask, one, sv);
    vst1q_f32(d + i, vaddq_f32(vld1q_f32(d + i),
                               vmulq_f32(vld1q_f32(g + i), mult)));
  }
  for (; i < n; ++i) d[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
}

}  // namespace

const Kernels& NeonKernels() {
  static const Kernels kTable = [] {
    Kernels t = ScalarKernels();  // softmax/sumsq/l2norm/quant stay scalar
    t.isa = Isa::kNeon;
    t.matmul_row = MatMulRow;
    t.dot = Dot;
    t.axpy = Axpy;
    t.add = Add;
    t.sub = Sub;
    t.mul = Mul;
    t.scale = ScaleK;
    t.acc = Acc;
    t.acc_scaled = AccScaled;
    t.mul_acc = MulAcc;
    t.relu = Relu;
    t.relu_bwd = ReluBwd;
    t.leaky_relu = LeakyRelu;
    t.leaky_relu_bwd = LeakyReluBwd;
    return t;
  }();
  return kTable;
}

}  // namespace widen::tensor::simd

#endif  // __aarch64__
