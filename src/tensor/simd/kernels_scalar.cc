// Scalar reference kernels. These loop bodies replicate the pre-SIMD
// implementations in tensor/ops.cc statement for statement — forcing
// WIDEN_SIMD=off must reproduce the seed kernels' results bitwise, and the
// vector tables' lanewise entries are tested for exact agreement against
// this table. Keep every reduction strictly ascending.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd/half.h"
#include "tensor/simd/simd.h"

namespace widen::tensor::simd {
namespace {

// Columns per j-tile of the blocked MatMul loop (mirrors ops.cc: the active
// B tile plus one output tile stay cache-resident while A is streamed).
constexpr int64_t kJTile = 128;
constexpr int64_t kQuantBlock = 32;

void MatMulRow(const float* arow, const float* b, float* orow, int64_t k,
               int64_t n) {
  for (int64_t j0 = 0; j0 < n; j0 += kJTile) {
    const int64_t j1 = std::min(n, j0 + kJTile);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulRowQ8(const float* arow, const int8_t* q, const float* scales,
                 float* orow, int64_t k, int64_t n) {
  const int64_t nb = (n + kQuantBlock - 1) / kQuantBlock;
  for (int64_t kk = 0; kk < k; ++kk) {
    const float av = arow[kk];
    if (av == 0.0f) continue;
    const int8_t* qrow = q + kk * n;
    const float* srow = scales + kk * nb;
    for (int64_t b0 = 0; b0 < n; b0 += kQuantBlock) {
      const int64_t b1 = std::min(n, b0 + kQuantBlock);
      const float s = av * srow[b0 / kQuantBlock];
      for (int64_t j = b0; j < b1; ++j) {
        orow[j] += s * static_cast<float>(qrow[j]);
      }
    }
  }
}

void MatMulRowF16(const float* arow, const uint16_t* b, float* orow,
                  int64_t k, int64_t n) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float av = arow[kk];
    if (av == 0.0f) continue;
    const uint16_t* brow = b + kk * n;
    for (int64_t j = 0; j < n; ++j) orow[j] += av * HalfToFloat(brow[j]);
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t j = 0; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

void Axpy(float a, const float* x, float* y, int64_t n) {
  for (int64_t j = 0; j < n; ++j) y[j] += a * x[j];
}

void Add(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleK(const float* a, float c, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * c;
}

void Acc(const float* g, float* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] += g[i];
}

void AccScaled(const float* g, float s, float* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] += s * g[i];
}

void MulAcc(const float* g, const float* x, float* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] += g[i] * x[i];
}

void Relu(const float* x, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBwd(const float* g, const float* x, float* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    d[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
  }
}

void LeakyRelu(const float* x, float slope, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void LeakyReluBwd(const float* g, const float* x, float slope, float* d,
                  int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    d[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
  }
}

void SoftmaxRow(const float* row, const float* mrow, float* orow, int64_t n) {
  float max_v = mrow == nullptr ? row[0] : row[0] + mrow[0];
  for (int64_t j = 1; j < n; ++j) {
    const float z = mrow == nullptr ? row[j] : row[j] + mrow[j];
    max_v = std::max(max_v, z);
  }
  float denom = 0.0f;
  for (int64_t j = 0; j < n; ++j) {
    const float z = mrow == nullptr ? row[j] : row[j] + mrow[j];
    orow[j] = std::exp(z - max_v);
    denom += orow[j];
  }
  const float inv = 1.0f / denom;
  for (int64_t j = 0; j < n; ++j) orow[j] *= inv;
}

void SoftmaxRowBwd(const float* grow, const float* yrow, float* darow,
                   int64_t n) {
  float dot = 0.0f;
  for (int64_t j = 0; j < n; ++j) dot += grow[j] * yrow[j];
  for (int64_t j = 0; j < n; ++j) {
    darow[j] += yrow[j] * (grow[j] - dot);
  }
}

double SumSqRow(const float* row, int64_t n) {
  double sq = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    sq += static_cast<double>(row[j]) * row[j];
  }
  return sq;
}

void L2NormBwdRow(const float* grow, const float* yrow, float dot, float inv,
                  float* darow, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    darow[j] += (grow[j] - dot * yrow[j]) * inv;
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels kTable = {
      Isa::kScalar,
      MatMulRow,
      MatMulRowQ8,
      MatMulRowF16,
      Dot,
      Axpy,
      Add,
      Sub,
      Mul,
      ScaleK,
      Acc,
      AccScaled,
      MulAcc,
      Relu,
      ReluBwd,
      LeakyRelu,
      LeakyReluBwd,
      SoftmaxRow,
      SoftmaxRowBwd,
      SumSqRow,
      L2NormBwdRow,
  };
  return kTable;
}

}  // namespace widen::tensor::simd
