// Portable IEEE-754 binary16 <-> binary32 conversion.
//
// Every binary16 value is exactly representable in binary32, so decoding is
// exact and must agree bit-for-bit with hardware F16C (vcvtph2ps) — the
// scalar quant kernels and the AVX2 fused kernels both consume the same
// stored halves. Encoding rounds to nearest-even (the F16C default mode),
// handling subnormals, overflow-to-infinity, and NaN payload truncation.

#ifndef WIDEN_TENSOR_SIMD_HALF_H_
#define WIDEN_TENSOR_SIMD_HALF_H_

#include <cstdint>
#include <cstring>

namespace widen::tensor::simd {

inline float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half: normalize into a binary32 normal.
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      bits = sign | ((127 - 15 - e) << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp + (127 - 15)) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

inline uint16_t FloatToHalf(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf / NaN
    const uint16_t mant = abs > 0x7F800000u ? 0x200u : 0u;  // quiet NaN
    return static_cast<uint16_t>(sign | 0x7C00u | mant);
  }
  if (abs >= 0x477FF000u) {  // rounds to >= 2^16: overflow to infinity
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // below smallest normal half: subnormal or zero
    if (abs < 0x33000000u) return sign;  // rounds to zero
    const uint32_t shift = 125 - (abs >> 23);  // 13..23
    const uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    const uint32_t rounded = mant >> (shift + 1);
    const uint32_t rem = mant & ((1u << (shift + 1)) - 1);
    const uint32_t half_ulp = 1u << shift;
    uint32_t out = rounded;
    if (rem > half_ulp || (rem == half_ulp && (rounded & 1u))) ++out;
    return static_cast<uint16_t>(sign | out);
  }
  // Normal range: drop 13 mantissa bits with round-to-nearest-even.
  uint32_t out = ((abs >> 23) - (127 - 15)) << 10 | ((abs >> 13) & 0x3FFu);
  const uint32_t rem = abs & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;  // may carry
  return static_cast<uint16_t>(sign | out);  // carry into exponent is exact
}

}  // namespace widen::tensor::simd

#endif  // WIDEN_TENSOR_SIMD_HALF_H_
