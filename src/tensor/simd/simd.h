// Runtime SIMD dispatch for the hot tensor kernels (DESIGN.md §13).
//
// The ops layer never writes intrinsics: every vectorizable inner loop calls
// through a `Kernels` table of plain function pointers selected once per
// process. Three implementations exist:
//
//   kScalar — portable C++ whose loop bodies replicate the pre-SIMD kernels
//             statement for statement, so forcing the scalar ISA reproduces
//             the seed's results bitwise;
//   kAvx2   — x86-64 AVX2+FMA+F16C, compiled in its own translation unit
//             with -mavx2 -mfma -mf16c and selected only when
//             __builtin_cpu_supports() reports all three features;
//   kNeon   — AArch64 NEON (always present on AArch64).
//
// Selection: the WIDEN_SIMD environment variable ("auto" default, "off" /
// "scalar", "avx2", "neon") is read on first use; ForceIsa() overrides it at
// runtime for tests and benchmarks. Forcing an unsupported ISA falls back to
// scalar with a warning.
//
// Determinism contract (extends DESIGN.md §8): every kernel remains bitwise
// deterministic across thread counts *within one ISA* — reduction order is a
// fixed function of the problem size and the active table, never of the
// schedule. Two kernel classes exist:
//
//   * Lanewise kernels (add/sub/mul/scale/acc/mul_acc/relu/leaky_relu and
//     their backwards) perform one IEEE-rounded multiply and/or add per
//     element with no cross-lane reduction and no FMA contraction, so every
//     ISA produces bitwise-identical results to scalar.
//   * Reduction/fused kernels (matmul_row*, dot, axpy, softmax_row*,
//     sumsq_row, l2norm_bwd_row) fix the reduction tree per ISA (scalar:
//     strictly ascending; vector: fixed lane-striped partials combined in a
//     fixed order, FMA permitted), so results may differ ACROSS ISAs by
//     normal rounding slack. Tests pin themselves to ActiveIsa().

#ifndef WIDEN_TENSOR_SIMD_SIMD_H_
#define WIDEN_TENSOR_SIMD_SIMD_H_

#include <cstdint>

namespace widen::tensor::simd {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

const char* IsaName(Isa isa);

/// True when `isa`'s kernel table is compiled in AND the running CPU can
/// execute it. kScalar is always supported.
bool IsaSupported(Isa isa);

/// Dispatch table. All pointers are non-null in every table (unvectorized
/// entries alias the scalar implementation).
struct Kernels {
  Isa isa;

  // ---- MatMul family (per-ISA reduction order; FMA permitted) ----------
  // orow[j] += sum_k arow[kk] * b[kk*n + j]; k-terms accumulate in
  // ascending kk order per output element (thread-grid determinism).
  void (*matmul_row)(const float* arow, const float* b, float* orow,
                     int64_t k, int64_t n);
  // Fused dequant-dot over an int8 block-quantized B: q is rows*cols int8,
  // scales is rows * ceil(n/32) floats, effective B[kk][j] =
  // q[kk*n+j] * scales[kk*nb + j/32].
  void (*matmul_row_q8)(const float* arow, const int8_t* q,
                        const float* scales, float* orow, int64_t k,
                        int64_t n);
  // Fused dequant-dot over an IEEE-fp16 B (one uint16 per element).
  void (*matmul_row_f16)(const float* arow, const uint16_t* b, float* orow,
                         int64_t k, int64_t n);
  // sum_j a[j]*b[j], fixed per-ISA reduction tree.
  float (*dot)(const float* a, const float* b, int64_t n);
  // y[j] += a * x[j] (MatMul dB inner loop; FMA permitted).
  void (*axpy)(float a, const float* x, float* y, int64_t n);

  // ---- Lanewise kernels (bitwise-identical to scalar on every ISA) -----
  void (*add)(const float* a, const float* b, float* o, int64_t n);
  void (*sub)(const float* a, const float* b, float* o, int64_t n);
  void (*mul)(const float* a, const float* b, float* o, int64_t n);
  void (*scale)(const float* a, float c, float* o, int64_t n);  // o = a*c
  void (*acc)(const float* g, float* d, int64_t n);             // d += g
  void (*acc_scaled)(const float* g, float s, float* d, int64_t n);
  void (*mul_acc)(const float* g, const float* x, float* d, int64_t n);
  void (*relu)(const float* x, float* o, int64_t n);
  void (*relu_bwd)(const float* g, const float* x, float* d, int64_t n);
  void (*leaky_relu)(const float* x, float slope, float* o, int64_t n);
  void (*leaky_relu_bwd)(const float* g, const float* x, float slope,
                         float* d, int64_t n);

  // ---- Row kernels (internal reduction, per-ISA order) -----------------
  // Stable masked softmax of one row (mrow nullptr = unmasked): max scan
  // and normalize are vectorized; exp and the denominator sum stay in the
  // scalar ascending order (libm exp keeps transcendental accuracy).
  void (*softmax_row)(const float* row, const float* mrow, float* orow,
                      int64_t n);
  // darow[j] += yrow[j] * (grow[j] - <grow, yrow>).
  void (*softmax_row_bwd)(const float* grow, const float* yrow, float* darow,
                          int64_t n);
  // sum_j row[j]^2 accumulated in double precision.
  double (*sumsq_row)(const float* row, int64_t n);
  // darow[j] += (grow[j] - dot * yrow[j]) * inv.
  void (*l2norm_bwd_row)(const float* grow, const float* yrow, float dot,
                         float inv, float* darow, int64_t n);
};

/// The active table. First call resolves WIDEN_SIMD + CPU features, records
/// the choice in the profiler annotations and the widen_simd_isa gauge, and
/// logs it once. The returned reference is valid for the process lifetime.
const Kernels& Active();

/// ISA of the active table.
Isa ActiveIsa();

/// Test/bench hook: swaps the active table (scalar fallback when `isa` is
/// unsupported) and returns the PREVIOUSLY active ISA so callers can restore
/// it. Not safe to call while kernels are in flight on other threads.
Isa ForceIsa(Isa isa);

// Tables (for direct comparison in tests/benches; prefer Active()).
const Kernels& ScalarKernels();
#if defined(__x86_64__) || defined(_M_X64)
const Kernels& Avx2Kernels();  // call only when IsaSupported(kAvx2)
#endif
#if defined(__aarch64__)
const Kernels& NeonKernels();
#endif

}  // namespace widen::tensor::simd

#endif  // WIDEN_TENSOR_SIMD_SIMD_H_
