#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace widen::tensor::simd {
namespace {

std::atomic<const Kernels*> g_active{nullptr};
std::mutex g_init_mu;

#if defined(__x86_64__) || defined(_M_X64)
bool CpuHasAvx2Fma() {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  // The AVX2 table assumes all three features (FMA for the reduction
  // kernels, F16C for the fp16 fused dequant-dot).
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}
#endif

// Records the installed ISA where bench/profiler consumers can see it.
void PublishIsa(Isa isa) {
  obs::SetProfileAnnotation("simd_isa", IsaName(isa));
  WIDEN_METRIC_GAUGE(isa_gauge, "widen_simd_isa",
                     "Active SIMD kernel table (0=scalar, 1=avx2, 2=neon)");
  isa_gauge->Set(static_cast<double>(isa));
}

const Kernels& TableFor(Isa isa) {
  switch (isa) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kAvx2:
      return Avx2Kernels();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return NeonKernels();
#endif
    default:
      return ScalarKernels();
  }
}

Isa BestSupported() {
#if defined(__x86_64__) || defined(_M_X64)
  if (CpuHasAvx2Fma()) return Isa::kAvx2;
#endif
#if defined(__aarch64__)
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

// WIDEN_SIMD: auto (default) | off | scalar | avx2 | neon.
Isa ResolveFromEnv() {
  const char* env = std::getenv("WIDEN_SIMD");
  const std::string v = env == nullptr ? "auto" : env;
  if (v == "auto" || v.empty()) return BestSupported();
  if (v == "off" || v == "scalar") return Isa::kScalar;
  Isa want = Isa::kScalar;
  if (v == "avx2") {
    want = Isa::kAvx2;
  } else if (v == "neon") {
    want = Isa::kNeon;
  } else {
    WIDEN_LOG(Warning) << "unknown WIDEN_SIMD='" << v
                       << "' (expected auto|off|scalar|avx2|neon); using "
                       << IsaName(BestSupported());
    return BestSupported();
  }
  if (!IsaSupported(want)) {
    WIDEN_LOG(Warning) << "WIDEN_SIMD=" << v
                       << " not supported on this CPU/build; falling back "
                          "to scalar kernels";
    return Isa::kScalar;
  }
  return want;
}

const Kernels* InitActive() {
  std::lock_guard<std::mutex> lock(g_init_mu);
  const Kernels* k = g_active.load(std::memory_order_relaxed);
  if (k != nullptr) return k;
  const Isa isa = ResolveFromEnv();
  k = &TableFor(isa);
  PublishIsa(isa);
  WIDEN_LOG(Info) << "SIMD kernel table: " << IsaName(isa);
  g_active.store(k, std::memory_order_release);
  return k;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return CpuHasAvx2Fma();
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) k = InitActive();
  return *k;
}

Isa ActiveIsa() { return Active().isa; }

Isa ForceIsa(Isa isa) {
  if (!IsaSupported(isa)) {
    WIDEN_LOG(Warning) << "ForceIsa(" << IsaName(isa)
                       << "): unsupported; installing scalar kernels";
    isa = Isa::kScalar;
  }
  const Isa previous = ActiveIsa();  // resolves the table if still unset
  std::lock_guard<std::mutex> lock(g_init_mu);
  g_active.store(&TableFor(isa), std::memory_order_release);
  PublishIsa(isa);
  return previous;
}

}  // namespace widen::tensor::simd
