// AVX2+FMA+F16C kernel table. This translation unit (alone) is compiled
// with -mavx2 -mfma -mf16c -ffp-contract=off: fused multiply-adds appear
// ONLY where an explicit _mm256_fmadd intrinsic is written, so the lanewise
// kernels keep plain IEEE mul+add semantics and stay bitwise-identical to
// the scalar table (DESIGN.md §13). Reduction kernels fix their lane-striped
// partial order as a function of n only, preserving thread-count determinism
// within this ISA.
//
// All loads/stores are unaligned-tolerant (loadu/storeu): tensor buffers are
// 64-byte aligned at the head, but kernels also run on interior row
// pointers whose offset is not a multiple of the vector width.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd/half.h"
#include "tensor/simd/simd.h"

namespace widen::tensor::simd {
namespace {

constexpr int64_t kQuantBlock = 32;

// 8 int8 values at p -> 8 floats.
inline __m256 LoadQ8(const int8_t* p) {
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
}

// 8 IEEE halves at p -> 8 floats (exact decode).
inline __m256 LoadF16(const uint16_t* p) {
  return _mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

// Horizontal sum with a fixed tree: (lo+hi) pairwise within 128 bits.
inline float HSum(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

inline double HSumD(__m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

void MatMulRow(const float* arow, const float* b, float* orow, int64_t k,
               int64_t n) {
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    __m256 a1 = _mm256_loadu_ps(orow + j + 8);
    __m256 a2 = _mm256_loadu_ps(orow + j + 16);
    __m256 a3 = _mm256_loadu_ps(orow + j + 24);
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 av = _mm256_broadcast_ss(arow + kk);
      const float* brow = b + kk * n + j;
      a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), a0);
      a1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), a1);
      a2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), a2);
      a3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), a3);
    }
    _mm256_storeu_ps(orow + j, a0);
    _mm256_storeu_ps(orow + j + 8, a1);
    _mm256_storeu_ps(orow + j + 16, a2);
    _mm256_storeu_ps(orow + j + 24, a3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      a0 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + kk),
                           _mm256_loadu_ps(b + kk * n + j), a0);
    }
    _mm256_storeu_ps(orow + j, a0);
  }
  for (; j < n; ++j) {
    float acc = orow[j];
    for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j];
    orow[j] = acc;
  }
}

void MatMulRowQ8(const float* arow, const int8_t* q, const float* scales,
                 float* orow, int64_t k, int64_t n) {
  const int64_t nb = (n + kQuantBlock - 1) / kQuantBlock;
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    __m256 a1 = _mm256_loadu_ps(orow + j + 8);
    __m256 a2 = _mm256_loadu_ps(orow + j + 16);
    __m256 a3 = _mm256_loadu_ps(orow + j + 24);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      // The scale factors out of the 32-element block: one broadcast
      // multiplier av*scale feeds four FMAs over converted int8 lanes.
      const __m256 s = _mm256_set1_ps(av * scales[kk * nb + (j >> 5)]);
      const int8_t* qrow = q + kk * n + j;
      a0 = _mm256_fmadd_ps(s, LoadQ8(qrow), a0);
      a1 = _mm256_fmadd_ps(s, LoadQ8(qrow + 8), a1);
      a2 = _mm256_fmadd_ps(s, LoadQ8(qrow + 16), a2);
      a3 = _mm256_fmadd_ps(s, LoadQ8(qrow + 24), a3);
    }
    _mm256_storeu_ps(orow + j, a0);
    _mm256_storeu_ps(orow + j + 8, a1);
    _mm256_storeu_ps(orow + j + 16, a2);
    _mm256_storeu_ps(orow + j + 24, a3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const __m256 s = _mm256_set1_ps(av * scales[kk * nb + (j >> 5)]);
      a0 = _mm256_fmadd_ps(s, LoadQ8(q + kk * n + j), a0);
    }
    _mm256_storeu_ps(orow + j, a0);
  }
  for (; j < n; ++j) {
    float acc = orow[j];
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      acc += (av * scales[kk * nb + (j >> 5)]) *
             static_cast<float>(q[kk * n + j]);
    }
    orow[j] = acc;
  }
}

void MatMulRowF16(const float* arow, const uint16_t* b, float* orow,
                  int64_t k, int64_t n) {
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    __m256 a1 = _mm256_loadu_ps(orow + j + 8);
    __m256 a2 = _mm256_loadu_ps(orow + j + 16);
    __m256 a3 = _mm256_loadu_ps(orow + j + 24);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const __m256 avv = _mm256_set1_ps(av);
      const uint16_t* brow = b + kk * n + j;
      a0 = _mm256_fmadd_ps(avv, LoadF16(brow), a0);
      a1 = _mm256_fmadd_ps(avv, LoadF16(brow + 8), a1);
      a2 = _mm256_fmadd_ps(avv, LoadF16(brow + 16), a2);
      a3 = _mm256_fmadd_ps(avv, LoadF16(brow + 24), a3);
    }
    _mm256_storeu_ps(orow + j, a0);
    _mm256_storeu_ps(orow + j + 8, a1);
    _mm256_storeu_ps(orow + j + 16, a2);
    _mm256_storeu_ps(orow + j + 24, a3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 a0 = _mm256_loadu_ps(orow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(av), LoadF16(b + kk * n + j), a0);
    }
    _mm256_storeu_ps(orow + j, a0);
  }
  for (; j < n; ++j) {
    float acc = orow[j];
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      acc += av * HalfToFloat(b[kk * n + j]);
    }
    orow[j] = acc;
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 16),
                           _mm256_loadu_ps(b + j + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 24),
                           _mm256_loadu_ps(b + j + 24), acc3);
  }
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
  }
  float r = HSum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                               _mm256_add_ps(acc2, acc3)));
  for (; j < n; ++j) r += a[j] * b[j];
  return r;
}

void Axpy(float a, const float* x, float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j),
                               _mm256_loadu_ps(y + j)));
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

void Add(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleK(const float* a, float c, float* o, int64_t n) {
  const __m256 cv = _mm256_set1_ps(c);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), cv));
  }
  for (; i < n; ++i) o[i] = a[i] * c;
}

void Acc(const float* g, float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        d + i, _mm256_add_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) d[i] += g[i];
}

void AccScaled(const float* g, float s, float* d, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // mul then add (no FMA): bitwise-matches scalar d[i] += s * g[i].
    _mm256_storeu_ps(
        d + i, _mm256_add_ps(_mm256_loadu_ps(d + i),
                             _mm256_mul_ps(sv, _mm256_loadu_ps(g + i))));
  }
  for (; i < n; ++i) d[i] += s * g[i];
}

void MulAcc(const float* g, const float* x, float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        d + i,
        _mm256_add_ps(_mm256_loadu_ps(d + i),
                      _mm256_mul_ps(_mm256_loadu_ps(g + i),
                                    _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) d[i] += g[i] * x[i];
}

void Relu(const float* x, float* o, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // VMAXPS(x, 0) == (x > 0 ? x : 0) lane-exactly, including -0 -> +0 and
    // NaN -> 0 (the instruction returns the second operand on NaN/equal).
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBwd(const float* g, const float* x, float* d, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero,
                                      _CMP_GT_OQ);
    const __m256 mult = _mm256_and_ps(mask, one);  // 1.0 where x > 0 else 0
    _mm256_storeu_ps(
        d + i, _mm256_add_ps(_mm256_loadu_ps(d + i),
                             _mm256_mul_ps(_mm256_loadu_ps(g + i), mult)));
  }
  for (; i < n; ++i) d[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
}

void LeakyRelu(const float* x, float slope, float* o, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(slope);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 mask = _mm256_cmp_ps(xv, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(
        o + i, _mm256_blendv_ps(_mm256_mul_ps(sv, xv), xv, mask));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void LeakyReluBwd(const float* g, const float* x, float slope, float* d,
                  int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 sv = _mm256_set1_ps(slope);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero,
                                      _CMP_GT_OQ);
    const __m256 mult = _mm256_blendv_ps(sv, one, mask);
    _mm256_storeu_ps(
        d + i, _mm256_add_ps(_mm256_loadu_ps(d + i),
                             _mm256_mul_ps(_mm256_loadu_ps(g + i), mult)));
  }
  for (; i < n; ++i) d[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
}

void SoftmaxRow(const float* row, const float* mrow, float* orow, int64_t n) {
  // Max scan: vectorized (max is order-insensitive for the finite logits
  // this op is defined on, so the result equals the scalar scan).
  float max_v;
  {
    int64_t j = 0;
    if (n >= 8) {
      __m256 mv = mrow == nullptr
                      ? _mm256_loadu_ps(row)
                      : _mm256_add_ps(_mm256_loadu_ps(row),
                                      _mm256_loadu_ps(mrow));
      for (j = 8; j + 8 <= n; j += 8) {
        const __m256 z = mrow == nullptr
                             ? _mm256_loadu_ps(row + j)
                             : _mm256_add_ps(_mm256_loadu_ps(row + j),
                                             _mm256_loadu_ps(mrow + j));
        mv = _mm256_max_ps(mv, z);
      }
      __m128 s = _mm_max_ps(_mm256_castps256_ps128(mv),
                            _mm256_extractf128_ps(mv, 1));
      s = _mm_max_ps(s, _mm_movehl_ps(s, s));
      s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
      max_v = _mm_cvtss_f32(s);
    } else {
      max_v = mrow == nullptr ? row[0] : row[0] + mrow[0];
      j = 1;
    }
    for (; j < n; ++j) {
      const float z = mrow == nullptr ? row[j] : row[j] + mrow[j];
      max_v = std::max(max_v, z);
    }
  }
  // exp + denominator stay scalar-ascending (libm exp; same order as the
  // scalar table, so forward results match scalar bitwise).
  float denom = 0.0f;
  for (int64_t j = 0; j < n; ++j) {
    const float z = mrow == nullptr ? row[j] : row[j] + mrow[j];
    orow[j] = std::exp(z - max_v);
    denom += orow[j];
  }
  const float inv = 1.0f / denom;
  ScaleK(orow, inv, orow, n);
}

void SoftmaxRowBwd(const float* grow, const float* yrow, float* darow,
                   int64_t n) {
  const float dot = Dot(grow, yrow, n);
  const __m256 dv = _mm256_set1_ps(dot);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 t = _mm256_sub_ps(_mm256_loadu_ps(grow + j), dv);
    _mm256_storeu_ps(
        darow + j,
        _mm256_add_ps(_mm256_loadu_ps(darow + j),
                      _mm256_mul_ps(_mm256_loadu_ps(yrow + j), t)));
  }
  for (; j < n; ++j) darow[j] += yrow[j] * (grow[j] - dot);
}

double SumSqRow(const float* row, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(row + j);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double sq = HSumD(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) sq += static_cast<double>(row[j]) * row[j];
  return sq;
}

void L2NormBwdRow(const float* grow, const float* yrow, float dot, float inv,
                  float* darow, int64_t n) {
  const __m256 dv = _mm256_set1_ps(dot);
  const __m256 iv = _mm256_set1_ps(inv);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 t = _mm256_sub_ps(
        _mm256_loadu_ps(grow + j),
        _mm256_mul_ps(dv, _mm256_loadu_ps(yrow + j)));
    _mm256_storeu_ps(
        darow + j, _mm256_add_ps(_mm256_loadu_ps(darow + j),
                                 _mm256_mul_ps(t, iv)));
  }
  for (; j < n; ++j) darow[j] += (grow[j] - dot * yrow[j]) * inv;
}

}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels kTable = {
      Isa::kAvx2,
      MatMulRow,
      MatMulRowQ8,
      MatMulRowF16,
      Dot,
      Axpy,
      Add,
      Sub,
      Mul,
      ScaleK,
      Acc,
      AccScaled,
      MulAcc,
      Relu,
      ReluBwd,
      LeakyRelu,
      LeakyReluBwd,
      SoftmaxRow,
      SoftmaxRowBwd,
      SumSqRow,
      L2NormBwdRow,
  };
  return kTable;
}

}  // namespace widen::tensor::simd

#endif  // x86-64
