// 64-byte-aligned storage for tensor data (DESIGN.md §13).
//
// Every Tensor data/grad buffer is allocated on a cache-line/AVX-512-friendly
// 64-byte boundary so vector loads never split cache lines and aligned SIMD
// stores are always legal on the buffer head. The SIMD kernels still issue
// unaligned load/store instructions (loadu/storeu) because they also run on
// interior row pointers (row stride is not forced to a multiple of 16
// floats); on modern cores those are free when the address happens to be
// aligned, so the allocator buys the alignment win without constraining the
// kernels.
//
// AlignedAllocator is a minimal C++17 allocator over ::operator new with an
// align_val_t, usable with std::vector. Rebinding preserves the alignment.

#ifndef WIDEN_TENSOR_ALIGNED_BUFFER_H_
#define WIDEN_TENSOR_ALIGNED_BUFFER_H_

#include <cstddef>
#include <new>
#include <vector>

namespace widen::tensor {

inline constexpr std::size_t kTensorAlignment = 64;

template <typename T, std::size_t Alignment = kTensorAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment below natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The storage type behind every Tensor data and grad buffer.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

static_assert(kTensorAlignment % alignof(float) == 0);

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_ALIGNED_BUFFER_H_
