// Inference-mode execution for the tensor layer.
//
// InferenceScope is the serving-path entry point: while one is active on a
// thread it (a) disables autograd tape construction (it owns a NoGradScope),
// (b) routes tensor storage through a thread-local buffer pool so the
// fixed-shape forwards of a long-lived inference session stop hitting the
// allocator after the first pass, and (c) counts any gradient-buffer
// allocation that happens anyway, so tests can assert the serving path is
// genuinely tape- and gradient-free.
//
// The pool is per thread and survives between scopes on the same thread
// (that is where the reuse comes from — query N+1 recycles query N's
// buffers). Buffers are only *reclaimed* while a scope is active, so
// training allocations never flood the pool. Tensors may be handed to and
// destroyed on other threads freely: a buffer is simply freed normally when
// its destroying thread has no active scope.

#ifndef WIDEN_TENSOR_INFERENCE_H_
#define WIDEN_TENSOR_INFERENCE_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace widen::tensor {

/// RAII inference region (see file comment). Nestable; the pool and the
/// no-grad flag stay active until the outermost scope exits.
class InferenceScope {
 public:
  InferenceScope();
  ~InferenceScope();

  InferenceScope(const InferenceScope&) = delete;
  InferenceScope& operator=(const InferenceScope&) = delete;

  /// True while any InferenceScope is alive on this thread.
  static bool Active();

  /// Cumulative counters for the calling thread.
  struct Stats {
    int64_t buffers_acquired = 0;  // tensor storage requests inside scopes
    int64_t buffers_reused = 0;    // ... of which were served from the pool
    int64_t grad_allocations = 0;  // gradient buffers sized inside scopes
  };
  static Stats ThreadStats();
  static void ResetThreadStats();

 private:
  NoGradScope no_grad_;
};

}  // namespace widen::tensor

#endif  // WIDEN_TENSOR_INFERENCE_H_
