// Silhouette score: the quantitative stand-in for "classes form separated
// clusters" in the Fig. 3 t-SNE study (no display in this environment).

#ifndef WIDEN_VIZ_SILHOUETTE_H_
#define WIDEN_VIZ_SILHOUETTE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace widen::viz {

/// Mean silhouette coefficient of `points` ([n, d]) under `labels`
/// (size n, values in [0, num_labels)). Range [-1, 1]; higher = better
/// separated clusters. Requires >= 2 distinct labels, each with >= 1 point;
/// singleton-cluster points contribute 0 per the standard convention.
StatusOr<double> SilhouetteScore(const tensor::Tensor& points,
                                 const std::vector<int32_t>& labels);

}  // namespace widen::viz

#endif  // WIDEN_VIZ_SILHOUETTE_H_
