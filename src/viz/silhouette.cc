#include "viz/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace widen::viz {

StatusOr<double> SilhouetteScore(const tensor::Tensor& points,
                                 const std::vector<int32_t>& labels) {
  if (!points.defined() || points.shape().rank() != 2) {
    return Status::InvalidArgument("points must be [n, d]");
  }
  const int64_t n = points.rows(), d = points.cols();
  if (static_cast<int64_t>(labels.size()) != n) {
    return Status::InvalidArgument("labels size mismatch");
  }
  int32_t num_labels = 0;
  for (int32_t label : labels) {
    if (label < 0) return Status::InvalidArgument("negative label");
    num_labels = std::max(num_labels, label + 1);
  }
  if (num_labels < 2) {
    return Status::InvalidArgument("need at least 2 clusters");
  }
  std::vector<int64_t> cluster_size(static_cast<size_t>(num_labels), 0);
  for (int32_t label : labels) ++cluster_size[static_cast<size_t>(label)];

  const float* p = points.data();
  auto distance = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      const double diff =
          static_cast<double>(p[i * d + k]) - p[j * d + k];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };

  double total = 0.0;
  std::vector<double> mean_dist(static_cast<size_t>(num_labels));
  for (int64_t i = 0; i < n; ++i) {
    const int32_t own = labels[static_cast<size_t>(i)];
    if (cluster_size[static_cast<size_t>(own)] <= 1) continue;  // s(i) = 0
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_dist[static_cast<size_t>(labels[static_cast<size_t>(j)])] +=
          distance(i, j);
    }
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (int32_t c = 0; c < num_labels; ++c) {
      const int64_t size = cluster_size[static_cast<size_t>(c)];
      if (size == 0) continue;
      if (c == own) {
        a = mean_dist[static_cast<size_t>(c)] / static_cast<double>(size - 1);
      } else {
        b = std::min(b, mean_dist[static_cast<size_t>(c)] /
                            static_cast<double>(size));
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace widen::viz
