#include "viz/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace widen::viz {
namespace {

// Squared Euclidean distances between all row pairs.
std::vector<double> PairwiseSquaredDistances(const tensor::Tensor& points) {
  const int64_t n = points.rows(), d = points.cols();
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  const float* p = points.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* pi = p + i * d;
      const float* pj = p + j * d;
      for (int64_t k = 0; k < d; ++k) {
        const double diff = static_cast<double>(pi[k]) - pj[k];
        acc += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = acc;
      dist[static_cast<size_t>(j * n + i)] = acc;
    }
  }
  return dist;
}

// Conditional distribution P_{j|i} via binary search on the Gaussian
// precision beta_i so that the row entropy matches log(perplexity).
void ComputeConditionalP(const std::vector<double>& dist, int64_t n,
                         double perplexity, std::vector<double>& p) {
  const double target_entropy = std::log(perplexity);
  for (int64_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_min = 0.0, beta_max = 1e30;
    double* row = p.data() + i * n;
    const double* drow = dist.data() + i * n;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-beta * drow[j]);
        sum += row[j];
      }
      sum = std::max(sum, 1e-300);
      double entropy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (row[j] > 0.0) {
          const double prob = row[j] / sum;
          entropy -= prob * std::log(prob);
        }
        row[j] /= sum;
      }
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {  // too flat -> increase precision
        beta_min = beta;
        beta = (beta_max >= 1e30) ? beta * 2.0 : (beta + beta_max) / 2.0;
      } else {
        beta_max = beta;
        beta = (beta + beta_min) / 2.0;
      }
    }
  }
}

}  // namespace

StatusOr<tensor::Tensor> RunTsne(const tensor::Tensor& points,
                                 const TsneOptions& options) {
  if (!points.defined() || points.shape().rank() != 2) {
    return Status::InvalidArgument("points must be an [n, d] tensor");
  }
  const int64_t n = points.rows();
  if (n < 4) return Status::InvalidArgument("need at least 4 points");
  if (options.perplexity * 3.0 >= static_cast<double>(n)) {
    return Status::InvalidArgument(
        StrCat("perplexity ", options.perplexity, " infeasible for n=", n));
  }
  const int64_t out_dim = options.output_dim;

  // High-dimensional affinities.
  std::vector<double> dist = PairwiseSquaredDistances(points);
  std::vector<double> p_cond(static_cast<size_t>(n * n), 0.0);
  ComputeConditionalP(dist, n, options.perplexity, p_cond);
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] = std::max(
          (p_cond[static_cast<size_t>(i * n + j)] +
           p_cond[static_cast<size_t>(j * n + i)]) /
              (2.0 * static_cast<double>(n)),
          1e-12);
    }
  }

  // Low-dimensional map.
  Rng rng(options.seed);
  std::vector<double> y(static_cast<size_t>(n * out_dim));
  for (auto& v : y) v = rng.Normal(0.0, 1e-2);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> gradient(y.size(), 0.0);
  std::vector<double> q(static_cast<size_t>(n * n), 0.0);

  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (int64_t k = 0; k < out_dim; ++k) {
          const double diff = y[static_cast<size_t>(i * out_dim + k)] -
                              y[static_cast<size_t>(j * out_dim + k)];
          acc += diff * diff;
        }
        const double value = 1.0 / (1.0 + acc);
        q[static_cast<size_t>(i * n + j)] = value;
        q[static_cast<size_t>(j * n + i)] = value;
        q_sum += 2.0 * value;
      }
    }
    q_sum = std::max(q_sum, 1e-300);

    std::fill(gradient.begin(), gradient.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double kernel = q[static_cast<size_t>(i * n + j)];
        const double coeff =
            4.0 *
            (exaggeration * p[static_cast<size_t>(i * n + j)] -
             kernel / q_sum) *
            kernel;
        for (int64_t k = 0; k < out_dim; ++k) {
          gradient[static_cast<size_t>(i * out_dim + k)] +=
              coeff * (y[static_cast<size_t>(i * out_dim + k)] -
                       y[static_cast<size_t>(j * out_dim + k)]);
        }
      }
    }
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum_initial
                                : options.momentum_final;
    for (size_t idx = 0; idx < y.size(); ++idx) {
      velocity[idx] =
          momentum * velocity[idx] - options.learning_rate * gradient[idx];
      y[idx] += velocity[idx];
    }
    // Re-center to remove drift.
    for (int64_t k = 0; k < out_dim; ++k) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        mean += y[static_cast<size_t>(i * out_dim + k)];
      }
      mean /= static_cast<double>(n);
      for (int64_t i = 0; i < n; ++i) {
        y[static_cast<size_t>(i * out_dim + k)] -= mean;
      }
    }
  }

  tensor::Tensor out(tensor::Shape::Matrix(n, out_dim));
  float* dst = out.mutable_data();
  for (size_t idx = 0; idx < y.size(); ++idx) {
    dst[idx] = static_cast<float>(y[idx]);
  }
  return out;
}

}  // namespace widen::viz
