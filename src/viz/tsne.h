// Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 3 embedding
// visualization. Exact (O(n²)) rather than Barnes-Hut: the figure uses at
// most ~1000 points (the paper subsamples Yelp to 1000 for clarity too).

#ifndef WIDEN_VIZ_TSNE_H_
#define WIDEN_VIZ_TSNE_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"
#include "util/status.h"

namespace widen::viz {

struct TsneOptions {
  int64_t output_dim = 2;
  double perplexity = 30.0;
  int64_t iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int64_t exaggeration_iters = 100;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int64_t momentum_switch_iter = 250;
  uint64_t seed = 1;
};

/// Embeds the rows of `points` ([n, d]) into `output_dim` dimensions.
/// Returns an [n, output_dim] tensor. Fails if n < 4 or the perplexity is
/// infeasible (needs perplexity * 3 < n).
StatusOr<tensor::Tensor> RunTsne(const tensor::Tensor& points,
                                 const TsneOptions& options = {});

}  // namespace widen::viz

#endif  // WIDEN_VIZ_TSNE_H_
