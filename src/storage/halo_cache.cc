#include "storage/halo_cache.h"

#include <cstring>

#include "util/logging.h"

namespace widen::storage {

HaloCache::HaloCache(int64_t capacity_rows, int64_t dim)
    : capacity_rows_(capacity_rows), dim_(dim) {
  WIDEN_CHECK_GE(capacity_rows, 1);
  WIDEN_CHECK_GE(dim, 0);
  arena_.resize(static_cast<size_t>(capacity_rows * dim));
  slot_node_.resize(static_cast<size_t>(capacity_rows), -1);
  slot_prev_.resize(static_cast<size_t>(capacity_rows), -1);
  slot_next_.resize(static_cast<size_t>(capacity_rows), -1);
  index_.reserve(static_cast<size_t>(capacity_rows));
}

const float* HaloCache::Get(graph::NodeId v) {
  auto it = index_.find(v);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  MoveToFront(it->second);
  return arena_.data() + static_cast<int64_t>(it->second) * dim_;
}

const float* HaloCache::Insert(graph::NodeId v, const float* row) {
  int32_t slot;
  if (used_slots_ < capacity_rows_) {
    slot = used_slots_++;
  } else {
    slot = lru_tail_;
    Unlink(slot);
    index_.erase(slot_node_[static_cast<size_t>(slot)]);
    ++stats_.evictions;
  }
  slot_node_[static_cast<size_t>(slot)] = v;
  index_[v] = slot;
  PushFront(slot);
  float* dst = arena_.data() + static_cast<int64_t>(slot) * dim_;
  if (dim_ > 0) {
    std::memcpy(dst, row, static_cast<size_t>(dim_) * sizeof(float));
  }
  return dst;
}

void HaloCache::MoveToFront(int32_t slot) {
  if (slot == lru_head_) return;
  Unlink(slot);
  PushFront(slot);
}

void HaloCache::PushFront(int32_t slot) {
  slot_prev_[static_cast<size_t>(slot)] = -1;
  slot_next_[static_cast<size_t>(slot)] = lru_head_;
  if (lru_head_ >= 0) slot_prev_[static_cast<size_t>(lru_head_)] = slot;
  lru_head_ = slot;
  if (lru_tail_ < 0) lru_tail_ = slot;
}

void HaloCache::Unlink(int32_t slot) {
  const int32_t prev = slot_prev_[static_cast<size_t>(slot)];
  const int32_t next = slot_next_[static_cast<size_t>(slot)];
  if (prev >= 0) slot_next_[static_cast<size_t>(prev)] = next;
  if (next >= 0) slot_prev_[static_cast<size_t>(next)] = prev;
  if (lru_head_ == slot) lru_head_ = next;
  if (lru_tail_ == slot) lru_tail_ = prev;
}

}  // namespace widen::storage
