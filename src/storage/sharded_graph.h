// Mmap-backed loader for the sharded graph store (storage/shard_format.h).
//
// ShardedGraph::Open maps every shard file read-only and exposes
//
//   * O(1) global-id resolution (Locate: global -> (shard, local)),
//   * zero-copy typed pointers into each shard (CSR spans, feature rows),
//   * per-shard eviction (EvictShard -> MADV_DONTNEED) so a shard-by-shard
//     pass keeps only the working shard resident,
//
// and ShardedGraphView adapts a ShardedGraph to graph::GraphView so the
// samplers and the shared encode path (core/encoder.h) traverse it with the
// exact code — and the exact bytes — they use on an in-RAM HeteroGraph.
// Because shard files store neighbor ids GLOBALLY in CSR sort order, the
// spans handed out here are byte-identical to HeteroGraph's, which is what
// makes sampling (and therefore embeddings) bitwise-reproducible across the
// two backings at the same seed.
//
// Integrity: with `verify_checksums` (the default) Open() streams each file
// through a small read() buffer and checks the footer CRC-32C before
// mmapping — a deliberate non-mmap pass, so verification does not page the
// store into the process and the out-of-core RSS story holds. Structural
// validation (magic, version, section table, counts, offsets) always runs.
//
// Threading: ShardedGraph is immutable after Open and safe for concurrent
// readers. ShardedGraphView carries a per-view halo cache and is NOT
// thread-safe — construct one view per sampling thread (cheap: the views
// share the underlying mappings).

#ifndef WIDEN_STORAGE_SHARDED_GRAPH_H_
#define WIDEN_STORAGE_SHARDED_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "storage/halo_cache.h"
#include "storage/mmap_file.h"
#include "storage/shard_format.h"
#include "util/status.h"

namespace widen::storage {

struct ShardedGraphOptions {
  /// Streaming whole-file CRC pass before mmap. Catches every truncation and
  /// byte flip; costs one sequential read of the store.
  bool verify_checksums = true;
};

struct ShardLocation {
  int32_t shard = 0;
  int32_t local = 0;
};

class ShardedGraph {
 public:
  static StatusOr<ShardedGraph> Open(const std::string& dir,
                                     const ShardedGraphOptions& options = {});

  ShardedGraph(ShardedGraph&&) = default;
  ShardedGraph& operator=(ShardedGraph&&) = default;
  ShardedGraph(const ShardedGraph&) = delete;
  ShardedGraph& operator=(const ShardedGraph&) = delete;

  /// One opened shard: typed pointers into its (lazily faulted) mapping.
  /// Pointer lifetime = lifetime of the owning ShardedGraph.
  struct Shard {
    MappedFile file;
    int64_t num_local_nodes = 0;
    int64_t num_half_edges = 0;
    int64_t num_halo_nodes = 0;
    const int32_t* global_ids = nullptr;
    const int32_t* node_types = nullptr;
    const int32_t* labels = nullptr;  // nullptr on unlabeled graphs
    const int64_t* csr_offsets = nullptr;
    const graph::NodeId* csr_neighbors = nullptr;  // GLOBAL ids
    const graph::EdgeTypeId* csr_edge_types = nullptr;
    const float* features = nullptr;  // nullptr when feature_dim == 0
    const int32_t* halo_ids = nullptr;
    // File offset of the features section (-1 when absent). Lets sparse
    // remote-row fetches go through MappedFile::ReadAt instead of faulting
    // the mapping; see ReadFeatureRowInto.
    int64_t features_file_offset = -1;
  };

  const Manifest& manifest() const { return manifest_; }
  const graph::GraphSchema& schema() const { return manifest_.schema; }
  int32_t num_shards() const { return manifest_.num_shards; }
  int64_t num_nodes() const { return manifest_.num_nodes; }
  int64_t feature_dim() const { return manifest_.feature_dim; }
  bool has_labels() const { return manifest_.num_classes > 0; }

  const Shard& shard(int32_t s) const {
    WIDEN_DCHECK(s >= 0 && s < num_shards());
    return (*shards_)[static_cast<size_t>(s)];
  }

  /// O(1) global -> (shard, local). Branches once on the partition kind.
  ShardLocation Locate(graph::NodeId v) const {
    WIDEN_DCHECK(v >= 0 && v < num_nodes());
    if (manifest_.partition_kind == PartitionKind::kUniformBlocks) {
      const int32_t s = static_cast<int32_t>(v / manifest_.block_size);
      return ShardLocation{s,
                           static_cast<int32_t>(v - static_cast<int64_t>(s) *
                                                        manifest_.block_size)};
    }
    return ShardLocation{manifest_.shard_of[static_cast<size_t>(v)],
                         manifest_.local_of[static_cast<size_t>(v)]};
  }

  // Global-id convenience accessors (each is Locate + one indexed read).
  graph::NodeTypeId node_type(graph::NodeId v) const {
    const ShardLocation loc = Locate(v);
    return shard(loc.shard).node_types[loc.local];
  }
  int64_t degree(graph::NodeId v) const {
    const ShardLocation loc = Locate(v);
    const Shard& sh = shard(loc.shard);
    return sh.csr_offsets[loc.local + 1] - sh.csr_offsets[loc.local];
  }
  graph::Csr::NeighborSpan neighbors(graph::NodeId v) const {
    const ShardLocation loc = Locate(v);
    const Shard& sh = shard(loc.shard);
    const int64_t begin = sh.csr_offsets[loc.local];
    return graph::Csr::NeighborSpan{sh.csr_neighbors + begin,
                                    sh.csr_edge_types + begin,
                                    sh.csr_offsets[loc.local + 1] - begin};
  }
  const float* feature_row(graph::NodeId v) const {
    const ShardLocation loc = Locate(v);
    const Shard& sh = shard(loc.shard);
    return sh.features != nullptr
               ? sh.features + static_cast<int64_t>(loc.local) *
                                   manifest_.feature_dim
               : nullptr;
  }
  int32_t label(graph::NodeId v) const {
    const ShardLocation loc = Locate(v);
    const Shard& sh = shard(loc.shard);
    return sh.labels != nullptr ? sh.labels[loc.local] : -1;
  }

  /// Copies `loc`'s feature row (feature_dim floats) into `dst` via pread,
  /// without touching the shard's mapping. A pointer read faults the whole
  /// kernel fault-around window (64 KB) per miss, so scattered remote reads
  /// through the mapping quickly page in entire shards; this path keeps the
  /// process RSS flat and is what the halo cache uses to fill on a miss.
  /// Returns false when the store has no features or the read fails.
  bool ReadFeatureRowInto(ShardLocation loc, float* dst) const;

  /// Drops shard s's resident pages (pointers stay valid; see mmap_file.h).
  void EvictShard(int32_t s) const { shard(s).file.Evict(); }

  /// Resident bytes across all shard mappings (mincore; Linux only). NOTE:
  /// for MAP_SHARED file mappings mincore reports page-cache residency, so
  /// this is "how much of the store is warm in the page cache" — an upper
  /// bound on what the mappings contribute to process RSS, not the
  /// contribution itself (see mmap_file.h).
  int64_t ResidentBytes() const;

 private:
  ShardedGraph() = default;

  Manifest manifest_;
  // unique_ptr keeps Shard pointers stable across ShardedGraph moves.
  std::unique_ptr<std::vector<Shard>> shards_;
};

/// GraphView over a ShardedGraph, with an optional halo cache.
///
/// By default every feature read returns the raw mmap pointer (zero-copy) —
/// the bitwise-parity configuration. Calling SetHomeShard(s) switches remote
/// (non-home-shard) feature reads through the LRU halo cache, so a
/// shard-at-a-time pass that evicts finished shards re-reads hot boundary
/// rows from RAM instead of re-faulting evicted pages. Cached rows are
/// copies of the mmap bytes, so results are identical either way.
class ShardedGraphView final : public graph::GraphView {
 public:
  /// `halo_cache_rows` == 0 disables caching entirely.
  explicit ShardedGraphView(const ShardedGraph& store,
                            int64_t halo_cache_rows = 0);

  /// s in [0, num_shards) routes remote feature reads through the halo
  /// cache; -1 (the default) reads everything directly from the mappings.
  void SetHomeShard(int32_t s) { home_shard_ = s; }
  int32_t home_shard() const { return home_shard_; }

  const graph::GraphSchema& schema() const override { return store_->schema(); }
  int64_t num_nodes() const override { return store_->num_nodes(); }
  graph::NodeTypeId node_type(graph::NodeId v) const override {
    return store_->node_type(v);
  }
  int64_t degree(graph::NodeId v) const override { return store_->degree(v); }
  graph::Csr::NeighborSpan neighbors(graph::NodeId v) const override {
    return store_->neighbors(v);
  }
  int64_t feature_dim() const override { return store_->feature_dim(); }
  const float* feature_row(graph::NodeId v) const override;

  const ShardedGraph& store() const { return *store_; }
  /// nullptr when the cache is disabled.
  const HaloCacheStats* halo_stats() const {
    return halo_cache_ != nullptr ? &halo_cache_->stats() : nullptr;
  }

 private:
  const ShardedGraph* store_;
  std::unique_ptr<HaloCache> halo_cache_;
  // Staging row for pread-based halo fills (feature_dim floats). mutable
  // because feature_row is const; safe because the view is single-threaded.
  mutable std::vector<float> fill_row_;
  int32_t home_shard_ = -1;
};

/// Publishes point-in-time storage gauges into the metrics registry:
/// widen_storage_resident_bytes (page-cache warmth of the shard mappings,
/// see ShardedGraph::ResidentBytes) and — when `view` has a halo cache —
/// widen_storage_halo_hit_rate. The halo counters are maintained on the read
/// path; these two are derived values a scraper cannot compute from one
/// scrape, so benches and serving loops call this before each export.
void PublishStorageGauges(const ShardedGraph& store,
                          const ShardedGraphView* view);

}  // namespace widen::storage

#endif  // WIDEN_STORAGE_SHARDED_GRAPH_H_
