// On-disk format of the out-of-core sharded graph store (DESIGN.md §15).
//
// A sharded graph is a directory:
//
//   <dir>/manifest.wshard      graph-wide metadata + global->shard resolver
//   <dir>/shard_00000.wshard   one file per shard
//   <dir>/shard_00001.wshard   ...
//
// Every file is little-endian, versioned, and ends in a footer carrying a
// CRC-32C of all preceding bytes, so any truncation or byte flip is detected
// by one streaming pass at open time (the same Castagnoli polynomial as the
// checkpoint bundles, tensor/serialize.h). Shard payload sections are
// 64-byte aligned so the loader can hand out mmap-backed pointers directly
// as CSR spans and feature rows — the arrays are stored with exactly the
// in-RAM element types (NodeId = int32, EdgeTypeId = int32, int64 offsets,
// float features) and exactly the in-RAM ordering (each adjacency list
// sorted by (global neighbor id, edge type)), which is what makes sampling
// over the mmap bitwise-identical to sampling over a HeteroGraph.

#ifndef WIDEN_STORAGE_SHARD_FORMAT_H_
#define WIDEN_STORAGE_SHARD_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/schema.h"
#include "util/status.h"

namespace widen::storage {

inline constexpr char kManifestMagic[4] = {'W', 'S', 'H', 'M'};
inline constexpr char kShardMagic[4] = {'W', 'S', 'H', 'D'};
inline constexpr char kFooterMagic[4] = {'W', 'S', 'F', '1'};
inline constexpr uint32_t kShardFormatVersion = 1;

/// Payload sections of one shard file, in file order. All are fixed-width
/// arrays over the shard's local nodes / half-edges.
enum class SectionKind : uint32_t {
  kGlobalIds = 1,     // int32[num_local_nodes], ascending global node ids
  kNodeTypes = 2,     // int32[num_local_nodes]
  kLabels = 3,        // int32[num_local_nodes]; present iff graph has labels
  kCsrOffsets = 4,    // int64[num_local_nodes + 1]
  kCsrNeighbors = 5,  // int32[num_half_edges], GLOBAL neighbor ids
  kCsrEdgeTypes = 6,  // int32[num_half_edges]
  kFeatures = 7,      // float[num_local_nodes * feature_dim]
  kHaloIds = 8,       // int32[num_halo_nodes], ascending global ids of
                      // neighbors owned by other shards (boundary set)
};

/// Section payloads start at multiples of this within a shard file, so that
/// every element type above is naturally aligned in the mapping.
inline constexpr uint64_t kSectionAlignment = 64;

/// One row of the shard file's section table.
struct SectionEntry {
  uint32_t kind = 0;      // SectionKind
  uint32_t reserved = 0;  // zero; reject nonzero (future flags)
  uint64_t offset = 0;    // absolute file offset, kSectionAlignment-aligned
  uint64_t size = 0;      // payload bytes
  uint32_t crc = 0;       // CRC-32C of the payload bytes
  uint32_t pad = 0;       // zero
};

/// Fixed-size shard file header (before the section table).
struct ShardHeader {
  uint32_t version = kShardFormatVersion;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;
  uint32_t section_count = 0;
  int64_t num_local_nodes = 0;
  int64_t num_half_edges = 0;
  int64_t num_halo_nodes = 0;
  int64_t feature_dim = 0;
};

/// How global node ids map to (shard, local index).
enum class PartitionKind : uint8_t {
  /// shard = min(v / block_size, num_shards - 1); local = v - shard * block.
  /// Used by the streaming builders; the resolver needs no per-node state.
  kUniformBlocks = 1,
  /// Explicit per-node arrays (GreedyPartition output). The manifest carries
  /// shard_of[] and local_of[]; O(1) lookups at 8 bytes of RAM per node.
  kExplicitMap = 2,
};

/// Parsed manifest: everything needed to open the shards and resolve ids.
struct Manifest {
  uint32_t version = kShardFormatVersion;
  int32_t num_shards = 0;
  int64_t num_nodes = 0;
  int64_t num_half_edges = 0;
  int64_t feature_dim = 0;
  int32_t num_classes = 0;               // 0 = unlabeled graph
  graph::NodeTypeId labeled_node_type = -1;
  graph::GraphSchema schema;
  PartitionKind partition_kind = PartitionKind::kUniformBlocks;
  int64_t block_size = 0;                   // kUniformBlocks
  std::vector<int32_t> shard_of;            // kExplicitMap
  std::vector<int32_t> local_of;            // kExplicitMap
};

/// File name helpers (relative to the store directory).
std::string ManifestFileName();
std::string ShardFileName(int32_t shard_id);

/// Serializes `manifest` to the exact byte layout (including the footer).
std::string EncodeManifest(const Manifest& manifest);

/// Parses and fully validates manifest bytes (magic, version, footer CRC,
/// resolver consistency). Typed errors, never UB on corrupt input.
StatusOr<Manifest> DecodeManifest(const std::string& bytes);

}  // namespace widen::storage

#endif  // WIDEN_STORAGE_SHARD_FORMAT_H_
