#include "storage/shard_writer.h"

#include <algorithm>
#include <cstring>

#include "graph/partitioner.h"
#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace widen::storage {
namespace {

constexpr size_t kSectionEntryBytes = 32;
constexpr size_t kFooterBytes = 4 + sizeof(uint64_t) + sizeof(uint32_t);

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

struct PendingSection {
  SectionKind kind;
  const void* data;
  uint64_t size;
};

// Streams header + table + aligned sections + footer through `file`,
// computing the whole-file CRC as bytes go out.
Status WriteShardBytes(AtomicFile& file, const ShardHeader& header,
                       const std::vector<PendingSection>& sections) {
  std::string head;
  ByteWriter w(&head);
  w.WriteBytes(kShardMagic, 4);
  w.WriteScalar<uint32_t>(header.version);
  w.WriteScalar<uint32_t>(header.shard_id);
  w.WriteScalar<uint32_t>(header.num_shards);
  w.WriteScalar<uint32_t>(header.section_count);
  w.WriteScalar<int64_t>(header.num_local_nodes);
  w.WriteScalar<int64_t>(header.num_half_edges);
  w.WriteScalar<int64_t>(header.num_halo_nodes);
  w.WriteScalar<int64_t>(header.feature_dim);
  w.WriteScalar<uint32_t>(Crc32c(head.data(), head.size()));

  // Lay the sections out after the table, each aligned.
  const uint64_t table_bytes =
      sections.size() * kSectionEntryBytes + sizeof(uint32_t);
  uint64_t cursor = AlignUp(head.size() + table_bytes);
  std::string table;
  ByteWriter tw(&table);
  std::vector<uint64_t> offsets;
  for (const PendingSection& s : sections) {
    offsets.push_back(cursor);
    tw.WriteScalar<uint32_t>(static_cast<uint32_t>(s.kind));
    tw.WriteScalar<uint32_t>(0);
    tw.WriteScalar<uint64_t>(cursor);
    tw.WriteScalar<uint64_t>(s.size);
    tw.WriteScalar<uint32_t>(s.size > 0 ? Crc32c(s.data, s.size) : 0);
    tw.WriteScalar<uint32_t>(0);
    cursor = AlignUp(cursor + s.size);
  }
  tw.WriteScalar<uint32_t>(Crc32c(table.data(), table.size()));

  uint32_t crc = 0;
  uint64_t written = 0;
  auto emit = [&](const void* data, size_t size) -> Status {
    if (size == 0) return Status::OK();
    if (std::fwrite(data, 1, size, file.stream()) != size) {
      return Status::IOError("short write to " + file.temp_path());
    }
    crc = Crc32cExtend(crc, data, size);
    written += size;
    return Status::OK();
  };
  static const char kZeros[kSectionAlignment] = {};
  auto pad_to = [&](uint64_t target) -> Status {
    WIDEN_CHECK_GE(target, written);
    while (written < target) {
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(sizeof(kZeros), target - written));
      WIDEN_RETURN_IF_ERROR(emit(kZeros, chunk));
    }
    return Status::OK();
  };

  WIDEN_RETURN_IF_ERROR(emit(head.data(), head.size()));
  WIDEN_RETURN_IF_ERROR(emit(table.data(), table.size()));
  for (size_t i = 0; i < sections.size(); ++i) {
    WIDEN_RETURN_IF_ERROR(pad_to(offsets[i]));
    WIDEN_RETURN_IF_ERROR(emit(sections[i].data, sections[i].size));
  }
  WIDEN_RETURN_IF_ERROR(pad_to(AlignUp(written)));

  std::string footer;
  ByteWriter fw(&footer);
  fw.WriteBytes(kFooterMagic, 4);
  fw.WriteScalar<uint64_t>(written);
  fw.WriteScalar<uint32_t>(crc);
  if (std::fwrite(footer.data(), 1, footer.size(), file.stream()) !=
      footer.size()) {
    return Status::IOError("short write to " + file.temp_path());
  }
  return Status::OK();
}

}  // namespace

int64_t ShardStoreStats::TotalHalfEdges() const {
  int64_t total = 0;
  for (const ShardStats& s : shards) total += s.half_edges;
  return total;
}

int64_t ShardStoreStats::TotalNodes() const {
  int64_t total = 0;
  for (const ShardStats& s : shards) total += s.local_nodes;
  return total;
}

ShardFileWriter::ShardFileWriter(int32_t shard_id, int32_t num_shards,
                                 int64_t feature_dim, bool has_labels)
    : shard_id_(shard_id),
      num_shards_(num_shards),
      feature_dim_(feature_dim),
      has_labels_(has_labels) {
  WIDEN_CHECK_GE(shard_id, 0);
  WIDEN_CHECK_LT(shard_id, num_shards);
  WIDEN_CHECK_GE(feature_dim, 0);
}

void ShardFileWriter::AddNode(graph::NodeId global_id,
                              graph::NodeTypeId node_type, int32_t label,
                              const graph::NodeId* neighbors,
                              const graph::EdgeTypeId* edge_types,
                              int64_t degree, const float* feature_row) {
  WIDEN_CHECK(global_ids_.empty() || global_id > global_ids_.back())
      << "shard nodes must be added in ascending global order";
  global_ids_.push_back(global_id);
  node_types_.push_back(node_type);
  if (has_labels_) labels_.push_back(label);
  offsets_.push_back(offsets_.back() + degree);
  neighbors_.insert(neighbors_.end(), neighbors, neighbors + degree);
  edge_types_.insert(edge_types_.end(), edge_types, edge_types + degree);
  if (feature_dim_ > 0) {
    features_.insert(features_.end(), feature_row,
                     feature_row + feature_dim_);
  }
}

StatusOr<ShardStats> ShardFileWriter::Finish(
    const std::string& path,
    const std::function<int32_t(graph::NodeId)>& shard_of) {
  // Halo set: distinct remote neighbors, ascending.
  std::vector<int32_t> halo;
  for (int32_t v : neighbors_) {
    if (shard_of(v) != shard_id_) halo.push_back(v);
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());

  ShardHeader header;
  header.shard_id = static_cast<uint32_t>(shard_id_);
  header.num_shards = static_cast<uint32_t>(num_shards_);
  header.num_local_nodes = static_cast<int64_t>(global_ids_.size());
  header.num_half_edges = static_cast<int64_t>(neighbors_.size());
  header.num_halo_nodes = static_cast<int64_t>(halo.size());
  header.feature_dim = feature_dim_;

  std::vector<PendingSection> sections;
  auto add = [&sections](SectionKind kind, const void* data, uint64_t bytes) {
    sections.push_back(PendingSection{kind, data, bytes});
  };
  add(SectionKind::kGlobalIds, global_ids_.data(), global_ids_.size() * 4);
  add(SectionKind::kNodeTypes, node_types_.data(), node_types_.size() * 4);
  if (has_labels_) {
    add(SectionKind::kLabels, labels_.data(), labels_.size() * 4);
  }
  add(SectionKind::kCsrOffsets, offsets_.data(), offsets_.size() * 8);
  add(SectionKind::kCsrNeighbors, neighbors_.data(), neighbors_.size() * 4);
  add(SectionKind::kCsrEdgeTypes, edge_types_.data(), edge_types_.size() * 4);
  add(SectionKind::kFeatures, features_.data(), features_.size() * 4);
  add(SectionKind::kHaloIds, halo.data(), halo.size() * 4);
  header.section_count = static_cast<uint32_t>(sections.size());

  WIDEN_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Open(path));
  WIDEN_RETURN_IF_ERROR(WriteShardBytes(file, header, sections));
  WIDEN_RETURN_IF_ERROR(file.Commit());

  ShardStats stats;
  stats.shard_id = shard_id_;
  stats.local_nodes = header.num_local_nodes;
  stats.half_edges = header.num_half_edges;
  stats.halo_nodes = header.num_halo_nodes;
  WIDEN_ASSIGN_OR_RETURN(stats.file_bytes, FileSize(path));
  return stats;
}

Status WriteManifestFile(const std::string& dir, const Manifest& manifest) {
  const std::string bytes = EncodeManifest(manifest);
  const std::string path = dir + "/" + ManifestFileName();
  WIDEN_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Open(path));
  if (std::fwrite(bytes.data(), 1, bytes.size(), file.stream()) !=
      bytes.size()) {
    return Status::IOError("short write to " + file.temp_path());
  }
  return file.Commit();
}

StatusOr<ShardStoreStats> WriteShards(const graph::HeteroGraph& graph,
                                      const std::string& dir,
                                      const WriteShardsOptions& options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  WIDEN_RETURN_IF_ERROR(EnsureDirectory(dir));
  WIDEN_ASSIGN_OR_RETURN(
      graph::PartitionResult partition,
      graph::GreedyPartition(graph, options.num_shards));

  const int64_t n = graph.num_nodes();
  Manifest manifest;
  manifest.num_shards = options.num_shards;
  manifest.num_nodes = n;
  manifest.num_half_edges = graph.num_edges() * 2;
  manifest.feature_dim = graph.feature_dim();
  manifest.num_classes = graph.num_classes();
  manifest.labeled_node_type = graph.labeled_node_type();
  manifest.schema = graph.schema();
  manifest.partition_kind = PartitionKind::kExplicitMap;
  manifest.shard_of = partition.assignment;
  manifest.local_of.assign(static_cast<size_t>(n), 0);

  // Local index = rank of the node among its shard's members (ascending
  // global id), i.e. the order ShardFileWriter receives them in.
  std::vector<int32_t> next_local(
      static_cast<size_t>(options.num_shards), 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    const int32_t s = manifest.shard_of[static_cast<size_t>(v)];
    manifest.local_of[static_cast<size_t>(v)] = next_local[
        static_cast<size_t>(s)]++;
  }

  auto shard_of = [&manifest](graph::NodeId v) {
    return manifest.shard_of[static_cast<size_t>(v)];
  };

  ShardStoreStats stats;
  const bool has_labels = graph.has_labels();
  const float* features =
      graph.feature_dim() > 0 ? graph.features().data() : nullptr;
  for (int32_t s = 0; s < options.num_shards; ++s) {
    ShardFileWriter writer(s, options.num_shards, graph.feature_dim(),
                           has_labels);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (shard_of(v) != s) continue;
      graph::Csr::NeighborSpan span = graph.neighbors(v);
      writer.AddNode(v, graph.node_type(v), graph.label(v), span.neighbors,
                     span.edge_types, span.size,
                     features != nullptr ? features + v * graph.feature_dim()
                                         : nullptr);
      for (int64_t i = 0; i < span.size; ++i) {
        if (shard_of(span.neighbors[i]) != s) ++stats.cut_half_edges;
      }
    }
    WIDEN_ASSIGN_OR_RETURN(
        ShardStats shard_stats,
        writer.Finish(dir + "/" + ShardFileName(s), shard_of));
    stats.total_bytes += shard_stats.file_bytes;
    stats.shards.push_back(shard_stats);
  }

  WIDEN_RETURN_IF_ERROR(WriteManifestFile(dir, manifest));
  WIDEN_ASSIGN_OR_RETURN(int64_t manifest_bytes,
                         FileSize(dir + "/" + ManifestFileName()));
  stats.total_bytes += manifest_bytes;
  return stats;
}

}  // namespace widen::storage
