#include "storage/shard_format.h"

#include <cstring>

#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace widen::storage {
namespace {

// Element counts are validated against this cap before any allocation, the
// same defense as tensor/serialize.cc: a corrupt count must fail cleanly,
// not size a vector with a wrapped-around value.
constexpr uint64_t kMaxNodes = uint64_t{1} << 33;
constexpr uint64_t kMaxTypeNameBytes = 1 << 12;
constexpr uint64_t kMaxTypes = 1 << 16;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument(StrCat("corrupt shard manifest: ", what));
}

}  // namespace

std::string ManifestFileName() { return "manifest.wshard"; }

std::string ShardFileName(int32_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05d.wshard", shard_id);
  return buf;
}

std::string EncodeManifest(const Manifest& m) {
  std::string out;
  ByteWriter w(&out);
  w.WriteBytes(kManifestMagic, 4);
  w.WriteScalar<uint32_t>(m.version);
  w.WriteScalar<int32_t>(m.num_shards);
  w.WriteScalar<int64_t>(m.num_nodes);
  w.WriteScalar<int64_t>(m.num_half_edges);
  w.WriteScalar<int64_t>(m.feature_dim);
  w.WriteScalar<int32_t>(m.num_classes);
  w.WriteScalar<int32_t>(m.labeled_node_type);
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(m.schema.num_node_types()));
  for (int32_t t = 0; t < m.schema.num_node_types(); ++t) {
    const std::string& name = m.schema.node_type_name(t);
    w.WriteScalar<uint32_t>(static_cast<uint32_t>(name.size()));
    w.WriteBytes(name.data(), name.size());
  }
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(m.schema.num_edge_types()));
  for (int32_t e = 0; e < m.schema.num_edge_types(); ++e) {
    const graph::EdgeTypeSpec& spec = m.schema.edge_type(e);
    w.WriteScalar<uint32_t>(static_cast<uint32_t>(spec.name.size()));
    w.WriteBytes(spec.name.data(), spec.name.size());
    w.WriteScalar<int32_t>(spec.src_type);
    w.WriteScalar<int32_t>(spec.dst_type);
  }
  w.WriteScalar<uint8_t>(static_cast<uint8_t>(m.partition_kind));
  if (m.partition_kind == PartitionKind::kUniformBlocks) {
    w.WriteScalar<int64_t>(m.block_size);
  } else {
    w.WriteVector(m.shard_of);
    w.WriteVector(m.local_of);
  }
  // Footer: magic + payload size + CRC of everything before the footer.
  const uint64_t payload_size = out.size();
  const uint32_t crc = Crc32c(out.data(), out.size());
  w.WriteBytes(kFooterMagic, 4);
  w.WriteScalar<uint64_t>(payload_size);
  w.WriteScalar<uint32_t>(crc);
  return out;
}

StatusOr<Manifest> DecodeManifest(const std::string& bytes) {
  constexpr size_t kFooterSize = 4 + sizeof(uint64_t) + sizeof(uint32_t);
  if (bytes.size() < 4 + kFooterSize) return Corrupt("file too small");
  if (std::memcmp(bytes.data(), kManifestMagic, 4) != 0) {
    return Corrupt("bad magic");
  }
  // Validate the footer first: payload size and whole-payload CRC. This is
  // what catches truncation, trailing garbage, and any byte flip.
  const size_t payload_size = bytes.size() - kFooterSize;
  ByteReader footer(bytes.data() + payload_size, kFooterSize);
  char fmagic[4];
  uint64_t declared_size = 0;
  uint32_t declared_crc = 0;
  if (!footer.ReadScalar(&fmagic[0]) || !footer.ReadScalar(&fmagic[1]) ||
      !footer.ReadScalar(&fmagic[2]) || !footer.ReadScalar(&fmagic[3]) ||
      !footer.ReadScalar(&declared_size) || !footer.ReadScalar(&declared_crc)) {
    return Corrupt("unreadable footer");
  }
  if (std::memcmp(fmagic, kFooterMagic, 4) != 0) {
    return Corrupt("bad footer magic");
  }
  if (declared_size != payload_size) {
    return Corrupt("payload size mismatch");
  }
  if (Crc32c(bytes.data(), payload_size) != declared_crc) {
    return Corrupt("checksum mismatch");
  }

  ByteReader r(bytes.data() + 4, payload_size - 4);
  Manifest m;
  uint32_t num_node_types = 0;
  if (!r.ReadScalar(&m.version)) return Corrupt("truncated header");
  if (m.version != kShardFormatVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported shard format version ", m.version));
  }
  if (!r.ReadScalar(&m.num_shards) || !r.ReadScalar(&m.num_nodes) ||
      !r.ReadScalar(&m.num_half_edges) || !r.ReadScalar(&m.feature_dim) ||
      !r.ReadScalar(&m.num_classes) || !r.ReadScalar(&m.labeled_node_type) ||
      !r.ReadScalar(&num_node_types)) {
    return Corrupt("truncated header");
  }
  if (m.num_shards <= 0 || m.num_nodes < 0 || m.num_half_edges < 0 ||
      m.feature_dim < 0 || m.num_classes < 0 ||
      static_cast<uint64_t>(m.num_nodes) > kMaxNodes ||
      num_node_types > kMaxTypes) {
    return Corrupt("implausible counts");
  }
  auto read_name = [&r](std::string* name) {
    uint32_t len = 0;
    if (!r.ReadScalar(&len) || len > kMaxTypeNameBytes ||
        len > r.remaining()) {
      return false;
    }
    std::vector<char> buf(len);
    for (uint32_t i = 0; i < len; ++i) {
      if (!r.ReadScalar(&buf[i])) return false;
    }
    name->assign(buf.data(), len);
    return true;
  };
  for (uint32_t t = 0; t < num_node_types; ++t) {
    std::string name;
    if (!read_name(&name)) return Corrupt("bad node type table");
    m.schema.AddNodeType(std::move(name));
  }
  uint32_t num_edge_types = 0;
  if (!r.ReadScalar(&num_edge_types) || num_edge_types > kMaxTypes) {
    return Corrupt("bad edge type count");
  }
  for (uint32_t e = 0; e < num_edge_types; ++e) {
    std::string name;
    int32_t src = -1, dst = -1;
    if (!read_name(&name) || !r.ReadScalar(&src) || !r.ReadScalar(&dst) ||
        src < 0 || dst < 0 || src >= m.schema.num_node_types() ||
        dst >= m.schema.num_node_types()) {
      return Corrupt("bad edge type table");
    }
    m.schema.AddEdgeType(std::move(name), src, dst);
  }
  if (m.labeled_node_type < -1 ||
      m.labeled_node_type >= m.schema.num_node_types()) {
    return Corrupt("labeled node type out of range");
  }
  uint8_t kind = 0;
  if (!r.ReadScalar(&kind)) return Corrupt("missing partition kind");
  if (kind == static_cast<uint8_t>(PartitionKind::kUniformBlocks)) {
    m.partition_kind = PartitionKind::kUniformBlocks;
    if (!r.ReadScalar(&m.block_size) || m.block_size <= 0) {
      return Corrupt("bad block size");
    }
    // Every node must land in [0, num_shards).
    if (m.num_nodes > 0 &&
        (m.num_nodes - 1) / m.block_size >= m.num_shards) {
      return Corrupt("block size does not cover all shards");
    }
  } else if (kind == static_cast<uint8_t>(PartitionKind::kExplicitMap)) {
    m.partition_kind = PartitionKind::kExplicitMap;
    if (!r.ReadVector(&m.shard_of, kMaxNodes) ||
        !r.ReadVector(&m.local_of, kMaxNodes) ||
        m.shard_of.size() != static_cast<size_t>(m.num_nodes) ||
        m.local_of.size() != static_cast<size_t>(m.num_nodes)) {
      return Corrupt("bad resolver arrays");
    }
    for (size_t v = 0; v < m.shard_of.size(); ++v) {
      if (m.shard_of[v] < 0 || m.shard_of[v] >= m.num_shards ||
          m.local_of[v] < 0) {
        return Corrupt("resolver entry out of range");
      }
    }
  } else {
    return Corrupt("unknown partition kind");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes before footer");
  return m;
}

}  // namespace widen::storage
