// Read-only memory-mapped files for the shard store.
//
// A MappedFile owns one PROT_READ/MAP_SHARED mapping of a whole file. The
// mapping is page-faulted lazily: opening a shard costs no resident memory
// until its arrays are actually touched, which is the mechanism behind the
// out-of-core story. Evict() gives pages back to the OS (MADV_DONTNEED), so
// a long scan over many shards can hold only the working shard resident.
//
// Pointer reads vs ReadAt(): touching the mapping faults not just the hit
// page but the kernel's whole fault-around window (64 KB on current Linux),
// so scattered single-row reads can map a shard's entire payload almost
// immediately. ReadAt() serves the same bytes through pread on the retained
// fd instead — the page cache absorbs the I/O, but the pages are never
// mapped into this process, so its RSS does not grow. Use the pointers for
// dense local traversal, ReadAt() for sparse remote row fetches that get
// copied anyway (the halo cache fill is the canonical caller).
//
// Lifetime rule (DESIGN.md §15): every pointer handed out by the shard
// loader — CSR spans, feature rows, halo lists — points into a MappedFile
// and is valid exactly as long as the owning ShardedGraph is alive. Evict()
// does NOT invalidate pointers (the next touch faults the page back in).

#ifndef WIDEN_STORAGE_MMAP_FILE_H_
#define WIDEN_STORAGE_MMAP_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace widen::storage {

class MappedFile {
 public:
  MappedFile() = default;

  /// Maps the whole regular file at `path` read-only. Empty files map to a
  /// null base with size 0 (valid, nothing to read).
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  int64_t size() const { return size_; }

  /// Advises the kernel to drop this mapping's resident pages. Safe on live
  /// pointers: subsequent reads fault the data back from the file. No-op on
  /// platforms without madvise.
  void Evict() const;

  /// Reads `size` bytes at `offset` into `dst` via pread, bypassing the
  /// mapping entirely (no pages fault in, so process RSS is unaffected).
  /// Returns false on short reads, out-of-range requests, or empty files.
  bool ReadAt(int64_t offset, int64_t size, void* dst) const;

  /// Resident bytes of this mapping per Linux mincore (0 elsewhere). For a
  /// MAP_SHARED file mapping mincore reports page-cache residency — pages a
  /// sequential pass (e.g. checksum verification) pulled into the cache
  /// count here even after Evict() has unmapped them from this process. Read
  /// it as "bytes warm in the page cache", an upper bound on mapped bytes;
  /// use /proc VmRSS (obs::ReadCurrentRssBytes) for the process footprint.
  int64_t ResidentBytes() const;

 private:
  MappedFile(uint8_t* data, int64_t size, int fd)
      : data_(data), size_(size), fd_(fd) {}

  uint8_t* data_ = nullptr;
  int64_t size_ = 0;
  int fd_ = -1;  // retained for ReadAt; owned, closed by the destructor
};

}  // namespace widen::storage

#endif  // WIDEN_STORAGE_MMAP_FILE_H_
