// Bounded LRU cache of remote ("halo") feature rows.
//
// When a sampler works shard-by-shard, most feature reads hit the home
// shard's mmap directly; the reads that cross a shard boundary land here.
// Rows are copied once into a fixed slot arena (capacity_rows x dim floats,
// allocated up front — the cache never grows), then served by pointer until
// evicted.
//
// Invariants (DESIGN.md §15):
//   * A pointer returned by Get()/Insert() stays valid until that row is
//     evicted, which cannot happen before `capacity_rows - 1` other distinct
//     rows have been inserted. Callers that copy the row immediately (every
//     encoder gather does) need no further care.
//   * Not thread-safe: one HaloCache per sampling thread (it lives inside
//     ShardedGraphView, which is itself a cheap per-thread cursor).
//
// Hit/miss/eviction counters land in the process metrics registry
// (widen_storage_halo_*), and miss fills record a 1-in-32 sampled latency
// histogram, so a bench can report halo hit rates without plumbing.

#ifndef WIDEN_STORAGE_HALO_CACHE_H_
#define WIDEN_STORAGE_HALO_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"

namespace widen::storage {

struct HaloCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  double HitRate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class HaloCache {
 public:
  /// `capacity_rows` >= 1; `dim` is the feature width of every row.
  HaloCache(int64_t capacity_rows, int64_t dim);

  /// The cached row for `v`, or nullptr on a miss (caller then fetches the
  /// row and Insert()s it).
  const float* Get(graph::NodeId v);

  /// Copies `row` (dim floats) into the cache, evicting the least recently
  /// used row if full. Returns the cached copy.
  const float* Insert(graph::NodeId v, const float* row);

  const HaloCacheStats& stats() const { return stats_; }
  int64_t capacity_rows() const { return capacity_rows_; }
  int64_t size() const { return static_cast<int64_t>(index_.size()); }

 private:
  // Intrusive LRU list over slot indices; slot_prev_/slot_next_ link slots,
  // lru_head_ is most recent, lru_tail_ least recent.
  void MoveToFront(int32_t slot);
  void PushFront(int32_t slot);
  void Unlink(int32_t slot);

  int64_t capacity_rows_;
  int64_t dim_;
  std::vector<float> arena_;              // capacity_rows * dim
  std::vector<graph::NodeId> slot_node_;  // node cached in each used slot
  std::vector<int32_t> slot_prev_;
  std::vector<int32_t> slot_next_;
  std::unordered_map<graph::NodeId, int32_t> index_;
  int32_t lru_head_ = -1;
  int32_t lru_tail_ = -1;
  int32_t used_slots_ = 0;
  HaloCacheStats stats_;
};

}  // namespace widen::storage

#endif  // WIDEN_STORAGE_HALO_CACHE_H_
