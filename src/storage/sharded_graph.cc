#include "storage/sharded_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace widen::storage {
namespace {

constexpr uint64_t kHeaderBytes = 4 + 4 * sizeof(uint32_t) +
                                  4 * sizeof(int64_t) + sizeof(uint32_t);
constexpr uint64_t kSectionEntryBytes = 32;
constexpr uint64_t kFooterBytes = 4 + sizeof(uint64_t) + sizeof(uint32_t);

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(
      StrCat("corrupt shard file ", path, ": ", what));
}

// Streaming footer-CRC verification through a small read() buffer — NOT the
// mmap — so checking a multi-GB store never pages it into the process.
Status VerifyFileChecksum(const std::string& path) {
  WIDEN_ASSIGN_OR_RETURN(int64_t file_size, FileSize(path));
  if (static_cast<uint64_t>(file_size) < 4 + kFooterBytes) {
    return Corrupt(path, "file too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  const uint64_t payload = static_cast<uint64_t>(file_size) - kFooterBytes;
  std::vector<char> buf(256 << 10);
  uint32_t crc = 0;
  uint64_t left = payload;
  while (left > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(left, buf.size()));
    if (std::fread(buf.data(), 1, want, f) != want) {
      std::fclose(f);
      return Corrupt(path, "short read");
    }
    crc = Crc32cExtend(crc, buf.data(), want);
    left -= want;
  }
  char footer[kFooterBytes];
  const bool footer_ok =
      std::fread(footer, 1, kFooterBytes, f) == kFooterBytes;
  std::fclose(f);
  if (!footer_ok) return Corrupt(path, "short read");
  if (std::memcmp(footer, kFooterMagic, 4) != 0) {
    return Corrupt(path, "bad footer magic");
  }
  uint64_t declared_size = 0;
  uint32_t declared_crc = 0;
  std::memcpy(&declared_size, footer + 4, sizeof(declared_size));
  std::memcpy(&declared_crc, footer + 12, sizeof(declared_crc));
  if (declared_size != payload) return Corrupt(path, "payload size mismatch");
  if (declared_crc != crc) return Corrupt(path, "checksum mismatch");
  return Status::OK();
}

// Parses and structurally validates one mapped shard file, filling `out`'s
// typed pointers. Touches only the header/table pages.
Status ParseShard(const std::string& path, const Manifest& manifest,
                  int32_t expect_shard, ShardedGraph::Shard* out) {
  const uint8_t* base = out->file.data();
  const uint64_t size = static_cast<uint64_t>(out->file.size());
  if (size < kHeaderBytes + kFooterBytes) {
    return Corrupt(path, "file too small");
  }
  if (std::memcmp(base, kShardMagic, 4) != 0) {
    return Corrupt(path, "bad magic");
  }
  ByteReader r(reinterpret_cast<const char*>(base) + 4, size - 4);
  ShardHeader h;
  uint32_t header_crc = 0;
  if (!r.ReadScalar(&h.version) || !r.ReadScalar(&h.shard_id) ||
      !r.ReadScalar(&h.num_shards) || !r.ReadScalar(&h.section_count) ||
      !r.ReadScalar(&h.num_local_nodes) || !r.ReadScalar(&h.num_half_edges) ||
      !r.ReadScalar(&h.num_halo_nodes) || !r.ReadScalar(&h.feature_dim)) {
    return Corrupt(path, "truncated header");
  }
  if (!r.ReadScalar(&header_crc) ||
      header_crc != Crc32c(base, kHeaderBytes - sizeof(uint32_t))) {
    return Corrupt(path, "header checksum mismatch");
  }
  if (h.version != kShardFormatVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported shard format version ", h.version, " in ", path));
  }
  if (h.shard_id != static_cast<uint32_t>(expect_shard) ||
      h.num_shards != static_cast<uint32_t>(manifest.num_shards)) {
    return Corrupt(path, "shard identity mismatch with manifest");
  }
  if (h.num_local_nodes < 0 || h.num_half_edges < 0 || h.num_halo_nodes < 0 ||
      h.feature_dim != manifest.feature_dim ||
      h.num_local_nodes > manifest.num_nodes ||
      h.num_half_edges > manifest.num_half_edges) {
    return Corrupt(path, "implausible header counts");
  }

  // The expected section sequence is fixed by the writer.
  const bool has_labels = manifest.num_classes > 0;
  std::vector<std::pair<SectionKind, uint64_t>> expected;
  expected.emplace_back(SectionKind::kGlobalIds,
                        static_cast<uint64_t>(h.num_local_nodes) * 4);
  expected.emplace_back(SectionKind::kNodeTypes,
                        static_cast<uint64_t>(h.num_local_nodes) * 4);
  if (has_labels) {
    expected.emplace_back(SectionKind::kLabels,
                          static_cast<uint64_t>(h.num_local_nodes) * 4);
  }
  expected.emplace_back(SectionKind::kCsrOffsets,
                        static_cast<uint64_t>(h.num_local_nodes + 1) * 8);
  expected.emplace_back(SectionKind::kCsrNeighbors,
                        static_cast<uint64_t>(h.num_half_edges) * 4);
  expected.emplace_back(SectionKind::kCsrEdgeTypes,
                        static_cast<uint64_t>(h.num_half_edges) * 4);
  expected.emplace_back(SectionKind::kFeatures,
                        static_cast<uint64_t>(h.num_local_nodes) *
                            static_cast<uint64_t>(h.feature_dim) * 4);
  expected.emplace_back(SectionKind::kHaloIds,
                        static_cast<uint64_t>(h.num_halo_nodes) * 4);
  if (h.section_count != expected.size()) {
    return Corrupt(path, "unexpected section count");
  }

  const uint64_t table_bytes =
      h.section_count * kSectionEntryBytes + sizeof(uint32_t);
  if (size < kHeaderBytes + table_bytes + kFooterBytes) {
    return Corrupt(path, "truncated section table");
  }
  const uint8_t* table = base + kHeaderBytes;
  uint32_t table_crc = 0;
  std::memcpy(&table_crc, table + h.section_count * kSectionEntryBytes,
              sizeof(table_crc));
  if (table_crc != Crc32c(table, h.section_count * kSectionEntryBytes)) {
    return Corrupt(path, "section table checksum mismatch");
  }

  const uint64_t payload_end = size - kFooterBytes;
  out->num_local_nodes = h.num_local_nodes;
  out->num_half_edges = h.num_half_edges;
  out->num_halo_nodes = h.num_halo_nodes;
  uint64_t sections_end = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    SectionEntry e;
    const uint8_t* row = table + i * kSectionEntryBytes;
    std::memcpy(&e.kind, row, 4);
    std::memcpy(&e.reserved, row + 4, 4);
    std::memcpy(&e.offset, row + 8, 8);
    std::memcpy(&e.size, row + 16, 8);
    std::memcpy(&e.crc, row + 24, 4);
    std::memcpy(&e.pad, row + 28, 4);
    if (e.kind != static_cast<uint32_t>(expected[i].first) ||
        e.reserved != 0 || e.pad != 0) {
      return Corrupt(path, StrCat("bad section entry ", i));
    }
    if (e.size != expected[i].second) {
      return Corrupt(path, StrCat("section ", i, " size mismatch"));
    }
    if (e.offset % kSectionAlignment != 0 || e.offset > payload_end ||
        e.size > payload_end - e.offset) {
      return Corrupt(path, StrCat("section ", i, " out of bounds"));
    }
    sections_end = std::max(sections_end, e.offset + e.size);
    const uint8_t* p = e.size > 0 ? base + e.offset : nullptr;
    switch (expected[i].first) {
      case SectionKind::kGlobalIds:
        out->global_ids = reinterpret_cast<const int32_t*>(p);
        break;
      case SectionKind::kNodeTypes:
        out->node_types = reinterpret_cast<const int32_t*>(p);
        break;
      case SectionKind::kLabels:
        out->labels = reinterpret_cast<const int32_t*>(p);
        break;
      case SectionKind::kCsrOffsets:
        // Non-null even for an empty shard: offsets has n + 1 entries.
        out->csr_offsets = reinterpret_cast<const int64_t*>(base + e.offset);
        break;
      case SectionKind::kCsrNeighbors:
        out->csr_neighbors = reinterpret_cast<const graph::NodeId*>(p);
        break;
      case SectionKind::kCsrEdgeTypes:
        out->csr_edge_types = reinterpret_cast<const graph::EdgeTypeId*>(p);
        break;
      case SectionKind::kFeatures:
        out->features = reinterpret_cast<const float*>(p);
        out->features_file_offset =
            e.size > 0 ? static_cast<int64_t>(e.offset) : -1;
        break;
      case SectionKind::kHaloIds:
        out->halo_ids = reinterpret_cast<const int32_t*>(p);
        break;
    }
  }

  // Structural exact-size check: the writer pads the payload to the
  // alignment boundary and appends exactly one footer, so the file size is
  // fully determined by the section table. This catches footer truncation
  // and trailing garbage even when the CRC pass is skipped.
  const uint64_t aligned_end = (sections_end + kSectionAlignment - 1) /
                               kSectionAlignment * kSectionAlignment;
  if (payload_end != aligned_end) {
    return Corrupt(path, "file size disagrees with section table");
  }
  if (std::memcmp(base + payload_end, kFooterMagic, 4) != 0) {
    return Corrupt(path, "bad footer magic");
  }
  uint64_t recorded_payload = 0;
  std::memcpy(&recorded_payload, base + payload_end + 4,
              sizeof(recorded_payload));
  if (recorded_payload != payload_end) {
    return Corrupt(path, "footer size disagrees with file size");
  }
  return Status::OK();
}

}  // namespace

StatusOr<ShardedGraph> ShardedGraph::Open(const std::string& dir,
                                          const ShardedGraphOptions& options) {
  const std::string manifest_path = dir + "/" + ManifestFileName();
  WIDEN_ASSIGN_OR_RETURN(std::string manifest_bytes,
                         ReadFileToString(manifest_path));
  WIDEN_ASSIGN_OR_RETURN(Manifest manifest, DecodeManifest(manifest_bytes));

  ShardedGraph g;
  g.manifest_ = std::move(manifest);
  g.shards_ = std::make_unique<std::vector<Shard>>();
  g.shards_->reserve(static_cast<size_t>(g.manifest_.num_shards));

  int64_t total_nodes = 0;
  int64_t total_half_edges = 0;
  for (int32_t s = 0; s < g.manifest_.num_shards; ++s) {
    const std::string path = dir + "/" + ShardFileName(s);
    if (options.verify_checksums) {
      WIDEN_RETURN_IF_ERROR(VerifyFileChecksum(path));
    }
    Shard shard;
    WIDEN_ASSIGN_OR_RETURN(shard.file, MappedFile::Open(path));
    WIDEN_RETURN_IF_ERROR(ParseShard(path, g.manifest_, s, &shard));
    total_nodes += shard.num_local_nodes;
    total_half_edges += shard.num_half_edges;
    g.shards_->push_back(std::move(shard));
  }
  if (total_nodes != g.manifest_.num_nodes ||
      total_half_edges != g.manifest_.num_half_edges) {
    return Status::InvalidArgument(
        StrCat("corrupt shard store ", dir,
               ": shard totals disagree with manifest (nodes ", total_nodes,
               " vs ", g.manifest_.num_nodes, ", half-edges ",
               total_half_edges, " vs ", g.manifest_.num_half_edges, ")"));
  }
  return g;
}

int64_t ShardedGraph::ResidentBytes() const {
  int64_t total = 0;
  for (const Shard& s : *shards_) total += s.file.ResidentBytes();
  return total;
}

bool ShardedGraph::ReadFeatureRowInto(ShardLocation loc, float* dst) const {
  const Shard& sh = shard(loc.shard);
  if (sh.features_file_offset < 0) return false;
  const int64_t row_bytes = manifest_.feature_dim * 4;
  return sh.file.ReadAt(
      sh.features_file_offset + static_cast<int64_t>(loc.local) * row_bytes,
      row_bytes, dst);
}

ShardedGraphView::ShardedGraphView(const ShardedGraph& store,
                                   int64_t halo_cache_rows)
    : store_(&store) {
  if (halo_cache_rows > 0 && store.feature_dim() > 0) {
    halo_cache_ =
        std::make_unique<HaloCache>(halo_cache_rows, store.feature_dim());
    fill_row_.resize(static_cast<size_t>(store.feature_dim()));
  }
}

const float* ShardedGraphView::feature_row(graph::NodeId v) const {
  const ShardLocation loc = store_->Locate(v);
  const ShardedGraph::Shard& sh = store_->shard(loc.shard);
  const float* direct =
      sh.features != nullptr
          ? sh.features +
                static_cast<int64_t>(loc.local) * store_->feature_dim()
          : nullptr;
  if (halo_cache_ == nullptr || home_shard_ < 0 || loc.shard == home_shard_ ||
      direct == nullptr) {
    return direct;
  }
  WIDEN_METRIC_COUNTER(hits, "widen_storage_halo_hits_total",
                       "Remote feature reads served from the halo cache");
  WIDEN_METRIC_COUNTER(misses, "widen_storage_halo_misses_total",
                       "Remote feature reads that had to touch the mmap");
  WIDEN_METRIC_COUNTER(evictions, "widen_storage_halo_evictions_total",
                       "Halo cache rows evicted to admit a new row");
  WIDEN_METRIC_HISTOGRAM(fill_us, "widen_storage_halo_miss_fill_us",
                         "Latency of halo cache miss fills (sampled 1/32)");
  if (const float* cached = halo_cache_->Get(v)) {
    hits->Increment();
    return cached;
  }
  misses->Increment();
  obs::SampledLatencyTimer<32> timer(fill_us);
  const int64_t evictions_before = halo_cache_->stats().evictions;
  // Fill via pread, not through the mapping: a pointer read here would
  // fault the kernel's whole fault-around window (64 KB) of the remote
  // shard per miss, paging entire shards back in and defeating eviction.
  // The bytes are identical either way (same file, same offsets), so the
  // bitwise-parity contract is unaffected; the mmap read is only a
  // fallback if the pread fails.
  const float* src =
      store_->ReadFeatureRowInto(loc, fill_row_.data()) ? fill_row_.data()
                                                        : direct;
  const float* out = halo_cache_->Insert(v, src);
  if (halo_cache_->stats().evictions != evictions_before) {
    evictions->Increment();
  }
  return out;
}

void PublishStorageGauges(const ShardedGraph& store,
                          const ShardedGraphView* view) {
  WIDEN_METRIC_GAUGE(resident, "widen_storage_resident_bytes",
                     "Bytes of the shard mappings warm in the page cache");
  resident->Set(static_cast<double>(store.ResidentBytes()));
  if (view != nullptr) {
    if (const HaloCacheStats* stats = view->halo_stats()) {
      WIDEN_METRIC_GAUGE(hit_rate, "widen_storage_halo_hit_rate",
                         "Halo cache hits / (hits + misses), lifetime");
      hit_rate->Set(stats->HitRate());
    }
  }
}

}  // namespace widen::storage
