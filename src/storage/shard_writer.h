// Builders for the on-disk sharded graph store.
//
// Two entry points:
//
//   * WriteShards(graph, dir, options) — shard an in-RAM HeteroGraph with
//     the greedy edge-cut partitioner (graph/partitioner.h) and write the
//     store. This is the `widen_cli shard` path.
//
//   * ShardFileWriter — the low-level single-shard emitter both WriteShards
//     and the streaming synthetic generator (datasets/synthetic_stream.h)
//     feed. It buffers ONE shard's arrays (the only materialization the
//     streaming path ever does: peak memory is graph_size / num_shards, not
//     graph_size) and writes the file via AtomicFile with per-section and
//     whole-file CRC-32C.
//
// All files are written with the temp+fsync+rename protocol, so a crashed
// build leaves either nothing or a previous complete store, never a torn
// shard.

#ifndef WIDEN_STORAGE_SHARD_WRITER_H_
#define WIDEN_STORAGE_SHARD_WRITER_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "storage/shard_format.h"
#include "util/status.h"

namespace widen::storage {

struct ShardStats {
  int32_t shard_id = 0;
  int64_t local_nodes = 0;
  int64_t half_edges = 0;
  int64_t halo_nodes = 0;  // distinct neighbors owned by other shards
  int64_t file_bytes = 0;
};

struct ShardStoreStats {
  std::vector<ShardStats> shards;
  int64_t cut_half_edges = 0;  // half-edges whose endpoint is remote
  int64_t total_bytes = 0;     // shard files + manifest

  int64_t TotalHalfEdges() const;
  int64_t TotalNodes() const;
};

/// Accumulates one shard and writes its file. Nodes must be added in
/// ascending global-id order; each node's adjacency must be sorted by
/// (global neighbor id, edge type) — i.e. exactly a Csr::NeighborSpan.
class ShardFileWriter {
 public:
  ShardFileWriter(int32_t shard_id, int32_t num_shards, int64_t feature_dim,
                  bool has_labels);

  /// `label` is ignored unless the writer was built with has_labels.
  void AddNode(graph::NodeId global_id, graph::NodeTypeId node_type,
               int32_t label, const graph::NodeId* neighbors,
               const graph::EdgeTypeId* edge_types, int64_t degree,
               const float* feature_row);

  int64_t num_nodes() const {
    return static_cast<int64_t>(global_ids_.size());
  }

  /// Computes the halo set (via `shard_of`), writes the file atomically, and
  /// resets nothing — the writer is single-use.
  StatusOr<ShardStats> Finish(
      const std::string& path,
      const std::function<int32_t(graph::NodeId)>& shard_of);

 private:
  int32_t shard_id_;
  int32_t num_shards_;
  int64_t feature_dim_;
  bool has_labels_;
  std::vector<int32_t> global_ids_;
  std::vector<int32_t> node_types_;
  std::vector<int32_t> labels_;
  std::vector<int64_t> offsets_{0};
  std::vector<int32_t> neighbors_;
  std::vector<int32_t> edge_types_;
  std::vector<float> features_;
};

struct WriteShardsOptions {
  int32_t num_shards = 4;
};

/// Partitions `graph` with GreedyPartition and writes a complete store
/// (manifest + one file per shard, kExplicitMap resolver) into `dir`,
/// creating it if needed.
StatusOr<ShardStoreStats> WriteShards(const graph::HeteroGraph& graph,
                                      const std::string& dir,
                                      const WriteShardsOptions& options);

/// Writes the manifest for a store whose shard files were already emitted.
Status WriteManifestFile(const std::string& dir, const Manifest& manifest);

}  // namespace widen::storage

#endif  // WIDEN_STORAGE_SHARD_WRITER_H_
