#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace widen::storage {

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(
        StrCat("cannot open ", path, ": ", std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(
        StrCat("cannot stat ", path, ": ", std::strerror(err)));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError(StrCat(path, " is not a regular file"));
  }
  const int64_t size = static_cast<int64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0, -1);
  }
  void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(
        StrCat("cannot mmap ", path, ": ", std::strerror(err)));
  }
  // The fd is retained for ReadAt (the mapping alone keeps the file alive,
  // but pread needs a descriptor).
  return MappedFile(static_cast<uint8_t*>(base), size, fd);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fd_(std::exchange(other.fd_, -1)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(data_, static_cast<size_t>(size_));
    }
    if (fd_ >= 0) {
      ::close(fd_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool MappedFile::ReadAt(int64_t offset, int64_t size, void* dst) const {
  if (fd_ < 0 || offset < 0 || size < 0 || offset > size_ ||
      size > size_ - offset) {
    return false;
  }
  uint8_t* out = static_cast<uint8_t*>(dst);
  int64_t left = size;
  while (left > 0) {
    const ssize_t n = ::pread(fd_, out, static_cast<size_t>(left),
                              static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF inside a validated range: corrupt file
    out += n;
    offset += n;
    left -= n;
  }
  return true;
}

void MappedFile::Evict() const {
#ifdef MADV_DONTNEED
  if (data_ != nullptr) {
    // Read-only MAP_SHARED pages are clean; DONTNEED frees them immediately
    // and later touches re-fault from the page cache or disk.
    (void)::madvise(data_, static_cast<size_t>(size_), MADV_DONTNEED);
  }
#endif
}

int64_t MappedFile::ResidentBytes() const {
#ifdef __linux__
  if (data_ == nullptr) return 0;
  const int64_t page = static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
  const int64_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(static_cast<size_t>(pages));
  if (::mincore(data_, static_cast<size_t>(size_), vec.data()) != 0) return 0;
  int64_t resident = 0;
  for (unsigned char byte : vec) {
    if (byte & 1) ++resident;
  }
  return resident * page;
#else
  return 0;
#endif
}

}  // namespace widen::storage
